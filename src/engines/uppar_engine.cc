#include "engines/uppar_engine.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/record.h"
#include "core/record_batch.h"
#include "engines/repartition_common.h"
#include "engines/trigger.h"
#include "state/partition.h"

namespace slash::engines {

namespace {

using channel::InboundBuffer;
using channel::RdmaChannel;
using channel::SlotRef;
using core::Record;
using perf::Op;

struct UpParRun;

/// One outbound lane from a sender to a consumer: an RDMA channel for
/// remote consumers, an in-memory queue for same-node ones. The sender
/// serializes records directly into the open channel slot (zero-copy fan-
/// out) or into a staging vector for the local queue.
struct Outbound {
  RdmaChannel* channel = nullptr;  // remote lane
  LocalQueue* local = nullptr;     // same-node lane
  bool slot_open = false;
  SlotRef slot;
  std::vector<uint8_t> staging;
  std::unique_ptr<core::RecordWriter> writer;
};

struct SenderState {
  int global_id = 0;
  int node = 0;
  std::unique_ptr<perf::CpuContext> cpu;
  std::unique_ptr<FlowMux> mux;
  std::vector<Outbound> outbound;  // per consumer
};

struct ConsumerState {
  int global_id = 0;
  int node = 0;
  std::unique_ptr<perf::CpuContext> cpu;
  std::unique_ptr<state::Partition> partition;
  // Columnar staging buffer for ProcessBuffer (sized to operator_batch,
  // allocated once — the receive path stays allocation-free per buffer).
  std::unique_ptr<core::RecordBatch> batch;
  core::ResultSink sink;
  std::vector<int64_t> sender_wm;     // per global sender
  std::vector<bool> sender_final;
  int finals = 0;
  int64_t last_trigger_wm = core::kWatermarkMin;
  std::unique_ptr<sim::Event> arrivals;
  struct Inbound {
    int sender = 0;
    RdmaChannel* channel = nullptr;
    LocalQueue* local = nullptr;
  };
  std::vector<Inbound> inbound;

  int64_t Watermark() const {
    return *std::min_element(sender_wm.begin(), sender_wm.end());
  }
};

struct UpParRun {
  const core::QuerySpec* query;
  const workloads::Workload* workload;
  ClusterConfig config;
  sim::Simulator sim;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<rdma::Fabric> fabric;
  std::vector<std::unique_ptr<RdmaChannel>> channels;
  std::vector<std::unique_ptr<LocalQueue>> local_queues;
  std::vector<std::unique_ptr<SenderState>> senders;
  std::vector<std::unique_ptr<ConsumerState>> consumers;
  uint64_t records_in = 0;
  // Observability handles (resolved once in Run; tracer null when disabled).
  obs::Histogram* latency = nullptr;  // channel.transfer_latency_ns
  obs::Tracer* tracer = nullptr;
  uint32_t trace_window = 0;
  uint32_t trace_cat = 0;
  int senders_per_node = 0;
  int receivers_per_node = 0;
  bool failed = false;
  Status failure;
};

/// Aborts the run cleanly after a permanent channel failure: records the
/// cause and wakes every parked coroutine so it can observe `failed`.
void FailRun(UpParRun* run, const Status& cause) {
  if (run->failed) return;
  run->failed = true;
  run->failure = cause;
  for (auto& c : run->consumers) c->arrivals->Notify();
  for (auto& ch : run->channels) {
    ch->credit_event().Notify();
    ch->data_event().Notify();
  }
}

uint64_t LaneCapacity(const UpParRun& run) {
  return run.config.channel.slot_bytes - channel::kFooterBytes;
}

/// Closes and ships the open buffer of lane `ob` (if any).
sim::Task FlushLane(UpParRun* run, SenderState* s, Outbound* ob,
                    int64_t watermark, bool final_marker) {
  perf::CpuContext* cpu = s->cpu.get();
  if (ob->channel != nullptr) {
    if (!ob->slot_open) {
      if (!final_marker) co_return;  // nothing buffered
      while (!ob->channel->TryAcquire(&ob->slot, cpu)) {
        if (run->failed || ob->channel->broken()) co_return;
        const Nanos wait_start = run->sim.now();
        co_await ob->channel->credit_event().Wait();
        cpu->ChargeWait(run->sim.now() - wait_start);
      }
      ob->slot_open = true;
      ob->writer = std::make_unique<core::RecordWriter>(ob->slot.payload,
                                                        LaneCapacity(*run));
    }
    cpu->Charge(Op::kRdmaPost, 0);  // Post() itself charges the post cost
    const Status post =
        ob->channel->Post(ob->slot, ob->writer->bytes_used(),
                          /*user_tag=*/final_marker ? 1 : 0, watermark, cpu);
    if (!post.ok()) SLASH_CHECK(ob->channel->broken());
    ob->slot_open = false;
    ob->writer.reset();
    co_await cpu->Sync();
  } else {
    if (ob->writer == nullptr && !final_marker) co_return;
    LocalQueue::Buffer buffer;
    if (ob->writer != nullptr) {
      buffer.bytes.assign(ob->staging.begin(),
                          ob->staging.begin() + ob->writer->bytes_used());
      ob->writer.reset();
    }
    buffer.watermark = final_marker ? core::kWatermarkMax : watermark;
    ob->local->Push(std::move(buffer), cpu);
    co_await cpu->Sync();
  }
}

/// A sender thread: source -> stateless stages -> partition -> fan-out.
///
/// Columnar staging (config.operator_batch > 1): records are pulled from
/// the mux charge-free into a SoA RecordBatch — capturing the sender
/// watermark each record observed at read time in the batch's watermark
/// column — and then replayed in append order through the exact scalar
/// per-record sequence. Pulls charge nothing, so the charge sequence (and
/// with it every virtual-time decision) is byte-identical across batch
/// sizes (DESIGN.md §11).
sim::Task Sender(UpParRun* run, SenderState* s) {
  perf::CpuContext* cpu = s->cpu.get();
  core::RecordPipeline pipeline(run->query, cpu, run->config.execution);
  const int total_consumers = static_cast<int>(run->consumers.size());
  const uint32_t operator_batch =
      std::max<uint32_t>(1u, run->config.operator_batch);
  core::RecordBatch staged(operator_batch);
  Record r;
  uint64_t batch = 0;
  bool more = s->mux->Next(&r);
  while (!run->failed && more) {
    staged.Clear();
    do {
      staged.Append(r, s->mux->watermark());
      more = s->mux->Next(&r);
    } while (more && !staged.full());
    for (uint32_t i = 0; !run->failed && i < staged.size(); ++i) {
      Record cur = staged.Get(i);
      const int64_t staged_wm = staged.watermark(i);
      ++run->records_in;
      cpu->CountRecords(1);
      const uint16_t wire_size = run->workload->wire_size(cur.stream_id);
      cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
      if (pipeline.Process(&cur)) {
        // The costly part of the design: per-record destination selection
        // and the data-dependent write into the destination's fan-out
        // buffer.
        cpu->Charge(Op::kHashCompute);
        cpu->Charge(Op::kPartitionSelect);
        cpu->Charge(Op::kFanoutWrite);
        const int c = ConsumerOf(cur.key, total_consumers);
        Outbound* ob = &s->outbound[c];
        if (ob->channel != nullptr && !ob->slot_open) {
          while (!ob->channel->TryAcquire(&ob->slot, cpu)) {
            if (run->failed || ob->channel->broken()) co_return;
            const Nanos wait_start = run->sim.now();
            co_await ob->channel->credit_event().Wait();
            cpu->ChargeWait(run->sim.now() - wait_start);
          }
          ob->slot_open = true;
          ob->writer = std::make_unique<core::RecordWriter>(
              ob->slot.payload, LaneCapacity(*run));
        } else if (ob->channel == nullptr && ob->writer == nullptr) {
          ob->staging.resize(LaneCapacity(*run));
          ob->writer = std::make_unique<core::RecordWriter>(
              ob->staging.data(), LaneCapacity(*run));
        }
        if (!ob->writer->Append(cur, wire_size)) {
          co_await FlushLane(run, s, ob, staged_wm,
                             /*final_marker=*/false);
          // Reopen the lane and retry; a fresh buffer always fits one
          // record.
          if (ob->channel != nullptr) {
            while (!ob->channel->TryAcquire(&ob->slot, cpu)) {
              if (run->failed || ob->channel->broken()) co_return;
              const Nanos wait_start = run->sim.now();
              co_await ob->channel->credit_event().Wait();
              cpu->ChargeWait(run->sim.now() - wait_start);
            }
            ob->slot_open = true;
            ob->writer = std::make_unique<core::RecordWriter>(
                ob->slot.payload, LaneCapacity(*run));
          } else {
            ob->writer = std::make_unique<core::RecordWriter>(
                ob->staging.data(), LaneCapacity(*run));
          }
          SLASH_CHECK(ob->writer->Append(cur, wire_size));
        }
      }
      if (++batch >= run->config.source_batch) {
        batch = 0;
        co_await cpu->Sync();
      }
    }
  }
  if (run->failed) co_return;
  // Drain every lane, then mark end-of-stream to every consumer.
  for (Outbound& ob : s->outbound) {
    co_await FlushLane(run, s, &ob, s->mux->watermark(),
                       /*final_marker=*/false);
  }
  for (Outbound& ob : s->outbound) {
    co_await FlushLane(run, s, &ob, core::kWatermarkMax,
                       /*final_marker=*/true);
  }
  co_await cpu->Sync();
}

/// Applies one received buffer to the consumer's co-partitioned state.
///
/// The wire records are staged charge-free into the consumer's columnar
/// batch (chunked to operator_batch) and replayed in append order through
/// the scalar per-record sequence — byte-identical charges across batch
/// sizes (DESIGN.md §11).
void ProcessBuffer(UpParRun* run, ConsumerState* c, const uint8_t* payload,
                   uint64_t len, int64_t watermark, bool final_marker,
                   int sender) {
  perf::CpuContext* cpu = c->cpu.get();
  core::RecordBatch* staged = c->batch.get();
  core::RecordReader reader(payload, len);
  Record r;
  uint8_t wire_buf[512];
  bool more = reader.Next(&r);
  while (more) {
    staged->Clear();
    do {
      staged->Append(r);
      more = reader.Next(&r);
    } while (more && !staged->full());
    for (uint32_t i = 0; i < staged->size(); ++i) {
      const Record cur = staged->Get(i);
      cpu->CountRecords(1);
      cpu->Charge(Op::kRecordParse);
      cpu->Charge(Op::kDmaColdRead);
      cpu->Charge(Op::kWindowAssign);
      cpu->Charge(Op::kIndexProbe);
      const int64_t bucket = run->query->window.BucketOf(cur.timestamp);
      if (run->query->is_join()) {
        const uint16_t wire_size = run->workload->wire_size(cur.stream_id);
        SLASH_CHECK_LE(size_t{wire_size}, sizeof(wire_buf));
        SerializeWireRecord(cur, wire_size, wire_buf);
        cpu->Charge(Op::kStateAppend);
        cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
        c->partition->Append({cur.key, bucket}, cur.stream_id, wire_buf,
                             wire_size);
      } else {
        cpu->Charge(Op::kStateRmw);
        c->partition->UpdateAggregate({cur.key, bucket}, cur.value);
      }
    }
  }
  c->sender_wm[sender] = std::max(c->sender_wm[sender], watermark);
  if (final_marker && !c->sender_final[sender]) {
    c->sender_final[sender] = true;
    c->sender_wm[sender] = core::kWatermarkMax;
    ++c->finals;
  }
}

/// A receiver thread: polls its inbound lanes, updates co-partitioned
/// state, and triggers windows on its watermark.
sim::Task Receiver(UpParRun* run, ConsumerState* c) {
  perf::CpuContext* cpu = c->cpu.get();
  const int total_senders = static_cast<int>(run->senders.size());
  while (!run->failed && c->finals < total_senders) {
    bool progressed = false;
    for (auto& in : c->inbound) {
      if (in.channel != nullptr) {
        InboundBuffer buffer;
        while (in.channel->TryPoll(&buffer, cpu)) {
          progressed = true;
          run->latency->Record(run->sim.now() - buffer.send_time);
          ProcessBuffer(run, c, buffer.payload, buffer.payload_len,
                        buffer.watermark, /*final_marker=*/buffer.user_tag == 1,
                        in.sender);
          SLASH_CHECK(in.channel->Release(buffer, cpu).ok());
        }
      } else {
        LocalQueue::Buffer buffer;
        while (in.local->TryPop(&buffer, cpu)) {
          progressed = true;
          ProcessBuffer(run, c, buffer.bytes.data(), buffer.bytes.size(),
                        buffer.watermark,
                        /*final_marker=*/buffer.watermark == core::kWatermarkMax,
                        in.sender);
        }
      }
    }
    if (progressed) {
      const int64_t before = c->last_trigger_wm;
      TriggerWindows(*run->query, c->Watermark(), c->partition.get(),
                     &c->sink, cpu, &c->last_trigger_wm);
      if (run->tracer != nullptr && c->last_trigger_wm != before) {
        run->tracer->Instant(run->sim.now(), run->trace_window,
                             run->trace_cat, c->node, obs::kTrackEngine);
      }
      co_await cpu->Sync();
    } else if (!run->failed) {
      const Nanos wait_start = run->sim.now();
      co_await c->arrivals->Wait();
      cpu->ChargeWait(run->sim.now() - wait_start);
    }
  }
  // Aborted runs skip the final trigger: partial windows would pollute the
  // result digest.
  if (!run->failed) {
    TriggerWindows(*run->query, c->Watermark(), c->partition.get(), &c->sink,
                   cpu, &c->last_trigger_wm);
  }
  co_await cpu->Sync();
}

}  // namespace

RunStats UpParEngine::Run(const JobSpec& job) {
  core::QuerySpec query;
  ClusterConfig config;
  if (Status prepared = PrepareJob(job, &query, &config); !prepared.ok()) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = prepared;
    return stats;
  }
  return RunQuery(query, *job.sources, config);
}

RunStats UpParEngine::RunQuery(const core::QuerySpec& query,
                               const workloads::Workload& workload,
                               const ClusterConfig& config) {
  SLASH_CHECK_MSG(config.workers_per_node >= 2,
                  "re-partitioning engines need at least one sender and one "
                  "receiver per node");
  UpParRun run;
  run.query = &query;
  run.workload = &workload;
  run.config = config;
  run.senders_per_node = config.workers_per_node / 2;
  run.receivers_per_node = config.workers_per_node - run.senders_per_node;

  if (config.health.enabled) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = Status::Unimplemented(
        "health monitoring requires the Slash engine's quarantine/recovery "
        "path");
    return stats;
  }
  if (config.reconfig != nullptr) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = Status::Unimplemented(
        "elastic reconfiguration requires the Slash engine's handoff path");
    return stats;
  }

  RunTelemetry telemetry(config);
  obs::MetricsRegistry* registry = telemetry.registry();

  // The injector must be registered before the fabric is built so the
  // fabric attaches itself as the fault target at construction. The plan is
  // validated up front: a malformed plan is a configuration error, not a
  // mid-run surprise.
  if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
    const Status plan_status = config.fault_plan->Validate(config.nodes);
    if (!plan_status.ok()) {
      RunStats stats;
      stats.engine = std::string(name());
      stats.status = plan_status;
      return stats;
    }
    run.injector =
        std::make_unique<sim::FaultInjector>(&run.sim, *config.fault_plan);
    run.sim.set_fault_injector(run.injector.get());
  }

  // Register the observability plane before building the fabric so the
  // per-node NIC counters and channel handles wire themselves up.
  telemetry.Register(&run.sim);
  telemetry.NameNodes(config.nodes);
  run.latency = registry->GetHistogram(obs::metric::kTransferLatencyNs);
  run.tracer = run.sim.tracer();
  if (run.tracer != nullptr) {
    run.trace_window = run.tracer->Intern("engine.window_fire");
    run.trace_cat = run.tracer->Intern("uppar");
  }

  rdma::FabricConfig fabric_config;
  fabric_config.nodes = config.nodes;
  fabric_config.nic = config.nic;
  fabric_config.connection = config.connection;
  run.fabric = std::make_unique<rdma::Fabric>(&run.sim, fabric_config);

  state::PartitionConfig pcfg;
  pcfg.kind = query.is_join() ? state::StateKind::kAppend
                              : state::StateKind::kAggregate;
  pcfg.lss_capacity = config.state_lss_capacity;
  pcfg.index_buckets = config.state_index_buckets;

  const int total_flows = config.nodes * config.workers_per_node;
  const int flows_per_sender = config.workers_per_node / run.senders_per_node;

  // Consumers first (senders wire lanes to them).
  for (int node = 0; node < config.nodes; ++node) {
    for (int rcv = 0; rcv < run.receivers_per_node; ++rcv) {
      auto c = std::make_unique<ConsumerState>();
      c->global_id = node * run.receivers_per_node + rcv;
      c->node = node;
      c->cpu = std::make_unique<perf::CpuContext>(&run.sim, config.cost_model,
                                                  config.cpu_ghz);
      c->partition = std::make_unique<state::Partition>(c->global_id, pcfg);
      c->batch = std::make_unique<core::RecordBatch>(
          std::max<uint32_t>(1u, config.operator_batch));
      c->sink = core::ResultSink(config.collect_rows);
      c->arrivals = std::make_unique<sim::Event>(&run.sim);
      run.consumers.push_back(std::move(c));
    }
  }

  for (int node = 0; node < config.nodes; ++node) {
    for (int snd = 0; snd < run.senders_per_node; ++snd) {
      auto s = std::make_unique<SenderState>();
      s->global_id = node * run.senders_per_node + snd;
      s->node = node;
      s->cpu = std::make_unique<perf::CpuContext>(&run.sim, config.cost_model,
                                                  config.cpu_ghz);
      // This sender's share of the node's canonical flows.
      std::vector<std::unique_ptr<core::RecordSource>> flows;
      for (int f = 0; f < flows_per_sender; ++f) {
        const int flow = node * config.workers_per_node +
                         snd * flows_per_sender + f;
        flows.push_back(workload.MakeFlow(flow, total_flows,
                                          config.records_per_worker,
                                          config.seed));
      }
      s->mux = std::make_unique<FlowMux>(std::move(flows));
      s->outbound.resize(run.consumers.size());
      for (auto& consumer : run.consumers) {
        Outbound& ob = s->outbound[consumer->global_id];
        if (consumer->node == node) {
          run.local_queues.push_back(std::make_unique<LocalQueue>(&run.sim));
          ob.local = run.local_queues.back().get();
          ob.local->AddObserver(consumer->arrivals.get());
          consumer->inbound.push_back(
              {s->global_id, /*channel=*/nullptr, ob.local});
        } else {
          auto ch = RdmaChannel::Create(run.fabric.get(), node,
                                        consumer->node, config.channel);
          ob.channel = ch.get();
          ch->AddDataObserver(consumer->arrivals.get());
          ch->SetCloseHandler([run_ptr = &run](const Status& cause) {
            FailRun(run_ptr, cause);
          });
          consumer->inbound.push_back(
              {s->global_id, ch.get(), /*local=*/nullptr});
          run.channels.push_back(std::move(ch));
        }
      }
      run.senders.push_back(std::move(s));
    }
  }

  for (auto& c : run.consumers) {
    c->sender_wm.assign(run.senders.size(), core::kWatermarkMin);
    c->sender_final.assign(run.senders.size(), false);
  }

  for (auto& s : run.senders) run.sim.Spawn(Sender(&run, s.get()));
  for (auto& c : run.consumers) run.sim.Spawn(Receiver(&run, c.get()));

  RunStats stats;
  stats.engine = std::string(name());
  TimedSimRun(&run.sim, registry, &stats.sim_events_per_sec_wall);
  // An aborted run legitimately strands coroutines that were mid-protocol
  // when their channel died; only a *completed* run must fully drain.
  SLASH_CHECK_MSG(run.failed || run.sim.pending_tasks() == 0,
                  "UpPar run deadlocked with " << run.sim.pending_tasks()
                                               << " pending tasks");
  stats.status = run.failed ? run.failure : Status::OK();
  // Channel retries and NIC tx bytes were published live.
  if (!run.failed) {
    uint64_t credits = 0;
    for (auto& ch : run.channels) credits += ch->credits_outstanding();
    registry->GetCounter(obs::metric::kChannelCreditsOutstanding)
        ->Add(credits);
  }
  if (run.injector) {
    registry->GetCounter(obs::metric::kFaultsInjected)
        ->Add(run.injector->trace().size());
    registry->GetCounter(obs::metric::kFaultTraceDigest)
        ->Add(run.injector->trace_digest());
  }
  registry->GetCounter(obs::metric::kRecordsIn)->Add(run.records_in);
  if (const auto& pool = run.fabric->buffer_pool();
      pool.hits() + pool.misses() > 0) {
    registry->GetGauge(obs::metric::kBufferPoolHitRate)->Set(pool.hit_rate());
  }
  perf::Counters* senders =
      registry->GetCpu(obs::metric::kCpu, {{obs::kLabelRole, "sender"}});
  perf::Counters* receivers =
      registry->GetCpu(obs::metric::kCpu, {{obs::kLabelRole, "receiver"}});
  obs::Counter* emitted = registry->GetCounter(obs::metric::kRecordsEmitted);
  obs::Counter* checksum = registry->GetCounter(obs::metric::kResultChecksum);
  for (auto& s : run.senders) senders->Merge(s->cpu->counters());
  for (auto& c : run.consumers) {
    receivers->Merge(c->cpu->counters());
    emitted->Add(c->sink.count());
    checksum->Add(c->sink.checksum());
    if (config.collect_rows) {
      const auto& rows = c->sink.rows();
      stats.rows.insert(stats.rows.end(), rows.begin(), rows.end());
    }
  }
  telemetry.Finish(&stats);
  return stats;
}

}  // namespace slash::engines
