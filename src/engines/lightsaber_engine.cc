#include "engines/lightsaber_engine.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/record.h"
#include "core/record_batch.h"
#include "engines/trigger.h"
#include "state/partition.h"

namespace slash::engines {

namespace {

using core::Record;
using perf::Op;

struct LightSaberRun {
  const core::QuerySpec* query;
  const workloads::Workload* workload;
  ClusterConfig config;
  sim::Simulator sim;
  std::vector<std::unique_ptr<perf::CpuContext>> worker_cpus;
  std::vector<std::unique_ptr<state::Partition>> partials;  // per worker
  std::unique_ptr<state::Partition> merged;  // shared merge target
  core::ResultSink sink{true};
  uint64_t records_in = 0;
  int finished_workers = 0;
  int64_t last_trigger_wm = core::kWatermarkMin;
  obs::Tracer* tracer = nullptr;
  uint32_t trace_window = 0;
  uint32_t trace_cat = 0;
};

/// A worker thread: eagerly folds its flow into thread-local partial
/// state, then participates in the parallel late merge — each worker
/// merges its own partial aggregates into the shared merged table, and the
/// last one emits. This is LightSaber's task-parallel "late merge": the
/// merge is work every core shares, not a single merger thread.
sim::Task Worker(LightSaberRun* run, int w) {
  perf::CpuContext* cpu = run->worker_cpus[w].get();
  core::RecordPipeline pipeline(run->query, cpu, run->config.execution);
  auto source = run->workload->MakeFlow(w, run->config.workers_per_node,
                                        run->config.records_per_worker,
                                        run->config.seed);
  state::Partition* partial = run->partials[w].get();
  // Columnar staging (config.operator_batch > 1): source records are
  // appended charge-free into a SoA RecordBatch and replayed in append
  // order through the scalar per-record sequence, so charges (and virtual
  // time) stay byte-identical across batch sizes (DESIGN.md §11).
  const uint32_t operator_batch =
      std::max<uint32_t>(1u, run->config.operator_batch);
  core::RecordBatch staged(operator_batch);
  auto replay = [&] {
    for (uint32_t i = 0; i < staged.size(); ++i) {
      Record cur = staged.Get(i);
      const uint16_t wire_size = run->workload->wire_size(cur.stream_id);
      cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
      if (!pipeline.Process(&cur)) continue;
      pipeline.ChargeStatefulPrologue();
      cpu->Charge(Op::kIndexProbe);
      cpu->Charge(Op::kStateRmw);
      partial->UpdateAggregate(
          {cur.key, run->query->window.BucketOf(cur.timestamp)}, cur.value);
    }
    staged.Clear();
  };
  Record r;
  bool more = true;
  while (more) {
    uint64_t batch_records = 0;
    while (batch_records < run->config.source_batch &&
           (more = source->Next(&r))) {
      ++batch_records;
      staged.Append(r);
      if (staged.full()) replay();
    }
    replay();
    run->records_in += batch_records;
    cpu->CountRecords(batch_records);
    co_await cpu->Sync();
  }

  // Late merge: fold this worker's partials into the shared merged table
  // (thread-safe CRDT merges), charging this worker's core.
  partial->ForEachLive(
      [&](const state::EntryHeader& header, const uint8_t* value) {
        cpu->Charge(Op::kCrdtMergePerPair);
        state::AggState s;
        std::memcpy(&s, value, sizeof(s));
        run->merged->MergeAggregate({header.key, header.bucket}, s);
      });
  co_await cpu->Sync();

  if (++run->finished_workers == run->config.workers_per_node) {
    // Last worker emits the merged windows.
    TriggerWindows(*run->query, core::kWatermarkMax, run->merged.get(),
                   &run->sink, cpu, &run->last_trigger_wm);
    if (run->tracer != nullptr) {
      run->tracer->Instant(run->sim.now(), run->trace_window, run->trace_cat,
                           /*pid=*/0, obs::kTrackEngine);
    }
    co_await cpu->Sync();
  }
}

}  // namespace

RunStats LightSaberEngine::Run(const JobSpec& job) {
  core::QuerySpec query;
  ClusterConfig config;
  if (Status prepared = PrepareJob(job, &query, &config); !prepared.ok()) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = prepared;
    return stats;
  }
  return RunQuery(query, *job.sources, config);
}

RunStats LightSaberEngine::RunQuery(const core::QuerySpec& query,
                                    const workloads::Workload& workload,
                                    const ClusterConfig& config) {
  SLASH_CHECK_MSG(!query.is_join(),
                  "LightSaber does not support join operators "
                  "(paper Sec. 8.2.4)");
  SLASH_CHECK_MSG(config.nodes == 1, "LightSaber is a single-node engine");

  if (config.health.enabled) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = Status::Unimplemented(
        "health monitoring requires the Slash engine's quarantine/recovery "
        "path");
    return stats;
  }
  if (config.reconfig != nullptr) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = Status::Unimplemented(
        "elastic reconfiguration requires the Slash engine's handoff path");
    return stats;
  }

  LightSaberRun run;
  run.query = &query;
  run.workload = &workload;
  run.config = config;
  run.sink = core::ResultSink(config.collect_rows);

  RunTelemetry telemetry(config);
  obs::MetricsRegistry* registry = telemetry.registry();
  telemetry.Register(&run.sim);
  telemetry.NameNodes(/*nodes=*/1);
  run.tracer = run.sim.tracer();
  if (run.tracer != nullptr) {
    run.trace_window = run.tracer->Intern("engine.window_fire");
    run.trace_cat = run.tracer->Intern("lightsaber");
  }

  state::PartitionConfig pcfg;
  pcfg.kind = state::StateKind::kAggregate;
  pcfg.lss_capacity = config.state_lss_capacity;
  pcfg.index_buckets = config.state_index_buckets;
  for (int w = 0; w < config.workers_per_node; ++w) {
    run.worker_cpus.push_back(std::make_unique<perf::CpuContext>(
        &run.sim, config.cost_model, config.cpu_ghz));
    run.partials.push_back(std::make_unique<state::Partition>(w, pcfg));
  }
  run.merged = std::make_unique<state::Partition>(-1, pcfg);

  for (int w = 0; w < config.workers_per_node; ++w) {
    run.sim.Spawn(Worker(&run, w));
  }

  RunStats stats;
  stats.engine = std::string(name());
  TimedSimRun(&run.sim, registry, &stats.sim_events_per_sec_wall);
  SLASH_CHECK_MSG(run.sim.pending_tasks() == 0,
                  "LightSaber run left " << run.sim.pending_tasks()
                                         << " pending tasks");
  registry->GetCounter(obs::metric::kRecordsIn)->Add(run.records_in);
  registry->GetCounter(obs::metric::kRecordsEmitted)->Add(run.sink.count());
  registry->GetCounter(obs::metric::kResultChecksum)
      ->Add(run.sink.checksum());
  if (config.collect_rows) stats.rows = run.sink.rows();
  perf::Counters* workers =
      registry->GetCpu(obs::metric::kCpu, {{obs::kLabelRole, "worker"}});
  for (auto& cpu : run.worker_cpus) workers->Merge(cpu->counters());
  telemetry.Finish(&stats);
  return stats;
}

}  // namespace slash::engines
