// The LightSaber-like scale-up engine (paper Sec. 8.2.4, COST analysis).
//
// LightSaber [Theodorakis et al., SIGMOD'20] targets single-node,
// multi-core window aggregation with task-based parallelism and *late
// merge*: worker threads eagerly accumulate thread-local partial
// aggregates and a merge step lazily combines them per window. No network,
// no re-partitioning. It does not support joins (the paper selects YSB,
// CM, and NB7 for the COST comparison for exactly that reason).
//
// This engine is the fastest possible single node in our cost model — it
// pays neither the epoch protocol nor any network — which is what makes
// the COST comparison meaningful.
#ifndef SLASH_ENGINES_LIGHTSABER_ENGINE_H_
#define SLASH_ENGINES_LIGHTSABER_ENGINE_H_

#include "engines/engine.h"

namespace slash::engines {

class LightSaberEngine : public Engine {
 public:
  std::string_view name() const override { return "LightSaber"; }

  using Engine::Run;  // the (query, workload, config) compatibility shim

  /// Runs on a single node; the cluster must have nodes == 1. Joins are
  /// unsupported (check-fails), matching the real system.
  RunStats Run(const JobSpec& job) override;

 private:
  RunStats RunQuery(const core::QuerySpec& query,
                    const workloads::Workload& workload,
                    const ClusterConfig& config);
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_LIGHTSABER_ENGINE_H_
