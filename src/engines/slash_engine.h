// The Slash stateful executor (paper Secs. 4-5): native RDMA integration.
//
// Execution strategy per node:
//   * W worker coroutines, one per physical data flow, run the operator
//     pipeline push-based and *eagerly* update partial state in the local
//     SSB instance — a per-record RMW (aggregations) or append (joins),
//     never a partition-and-forward. There is no data re-partitioning.
//   * At epoch boundaries (every `epoch_bytes` of input, or ahead of time
//     at stream end) a worker drains every helper fragment, ships the delta
//     over the n^2 mesh of RDMA channels to the partition leaders, and
//     resets the fragments. Low watermarks piggyback on the deltas.
//   * A leader coroutine per node reassembles inbound deltas, CRDT-merges
//     them into the primary partition, advances the vector clock, and
//     triggers windows whose trigger watermark passed min(V) — emitting
//     per-key results from the merged, consistent state (properties P1/P2).
//
// The coroutine scheduler interleaves compute and RDMA work exactly as
// Sec. 5.3 describes: a coroutine blocked on an empty channel or missing
// credit parks on an event (charging pause-loop cycles for the wait) and
// other coroutines of the node keep running.
#ifndef SLASH_ENGINES_SLASH_ENGINE_H_
#define SLASH_ENGINES_SLASH_ENGINE_H_

#include "engines/engine.h"

namespace slash::engines {

class SlashEngine : public Engine {
 public:
  std::string_view name() const override { return "Slash"; }

  RunStats Run(const core::QuerySpec& query,
               const workloads::Workload& workload,
               const ClusterConfig& config) override;
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_SLASH_ENGINE_H_
