// The Slash stateful executor (paper Secs. 4-5): native RDMA integration.
//
// Execution strategy per node:
//   * W worker coroutines, one per physical data flow, run the operator
//     pipeline push-based and *eagerly* update partial state in the local
//     SSB instance — a per-record RMW (aggregations) or append (joins),
//     never a partition-and-forward. There is no data re-partitioning.
//   * At epoch boundaries (every `epoch_bytes` of input, or ahead of time
//     at stream end) a worker drains every helper fragment, ships the delta
//     over the n^2 mesh of RDMA channels to the partition leaders, and
//     resets the fragments. Low watermarks piggyback on the deltas.
//   * A leader coroutine per node reassembles inbound deltas, CRDT-merges
//     them into the primary partition, advances the vector clock, and
//     triggers windows whose trigger watermark passed min(V) — emitting
//     per-key results from the merged, consistent state (properties P1/P2).
//
// The coroutine scheduler interleaves compute and RDMA work exactly as
// Sec. 5.3 describes: a coroutine blocked on an empty channel or missing
// credit parks on an event (charging pause-loop cycles for the wait) and
// other coroutines of the node keep running.
#ifndef SLASH_ENGINES_SLASH_ENGINE_H_
#define SLASH_ENGINES_SLASH_ENGINE_H_

#include <vector>

#include "engines/engine.h"

namespace slash::engines {

class SlashEngine : public Engine {
 public:
  std::string_view name() const override { return "Slash"; }

  using Engine::Run;  // the (query, workload, config) compatibility shim

  /// Runs one job. A non-empty job.tenant labels every job-scoped metric
  /// and trace track {tenant=...}; job.quota > 0 caps the job's in-flight
  /// NIC credits. With an empty tenant and no quota the run is
  /// byte-identical to the legacy (query, workload, config) path.
  RunStats Run(const JobSpec& job) override;

  /// Multi-query multi-tenant execution (DESIGN.md §12): runs all `jobs`
  /// concurrently on ONE simulated cluster — one DES, one fabric, one
  /// node set described by `cluster` — with per-tenant NIC-credit quotas
  /// and per-tenant metric/trace labeling. Jobs must carry unique,
  /// non-empty tenants. Fault plans and health detection are per-cluster
  /// single-job constructs and are rejected with kUnimplemented here.
  /// Fair scheduling falls out of the DES: every job's coroutines
  /// interleave on the shared timestamp-ordered event queue.
  MultiRunStats RunJobs(const std::vector<JobSpec>& jobs,
                        const ClusterConfig& cluster);
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_SLASH_ENGINE_H_
