#include "engines/slash_engine.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/record.h"
#include "core/record_batch.h"
#include "elastic/coordinator.h"
#include "elastic/rebalancer.h"
#include "engines/trigger.h"
#include "state/state_backend.h"

namespace slash::engines {

namespace {

using channel::InboundBuffer;
using channel::RdmaChannel;
using channel::SlotRef;
using core::Record;
using perf::Op;

// Recovery is not free: each channel of the rebuilt attempt costs a
// connection setup, and restoring checkpoint blobs streams them back
// through memory at a finite rate. Both feed the modeled recovery delay.
constexpr Nanos kChannelSetupCost = 10 * kMicrosecond;
constexpr uint64_t kRestoreBytesPerNs = 4;

/// One replication stream: the snapshots a node has taken this attempt, in
/// round order. Append-only so that each replication target's coroutine can
/// keep its own cursor into it.
struct ReplState {
  struct Item {
    uint64_t round = 0;
    std::vector<uint8_t> bytes;
  };
  // Deque, not vector: the Replicator coroutine holds a reference to the
  // item it is chunking across suspension points while TakeSnapshot keeps
  // appending; push_back must not invalidate references.
  std::deque<Item> items;
  bool terminal = false;  // no further snapshots will be appended
  std::unique_ptr<sim::Event> event;
};

/// One input flow assigned to a worker. Flow ids are global and stable
/// across recovery attempts; a crashed node's flows are re-homed to its
/// heir, which re-derives the exact checkpoint cut by skipping the
/// deterministic generator to the checkpointed offset.
struct Lane {
  uint64_t flow = 0;
  std::unique_ptr<core::RecordSource> source;  // local-read mode
  RdmaChannel* ingest = nullptr;               // rdma_ingestion mode
  uint64_t consumed = 0;
  int64_t last_ts = core::kWatermarkMin;
  bool done = false;
};

/// One inbound state-synchronization channel. Helper `helper` ships the
/// deltas of exactly one partition `partition` through it, so the stream is
/// a strict epoch FIFO carrying exactly one delta (terminated by a
/// user_tag == 1 chunk) per epoch — the property the checkpoint barrier
/// counts on to align snapshots across nodes.
struct InChannel {
  int helper = 0;
  int partition = 0;
  RdmaChannel* ch = nullptr;
  uint64_t finals_merged = 0;  // epochs fully merged from this channel
  bool final_seen = false;     // end-of-stream delta received
  // Low watermark of the last fully merged delta on *this* channel. Window
  // triggering joins these per-channel values per led partition instead of
  // keeping one clock entry per helper: helper deltas ship per partition,
  // so when this node leads several partitions one partition's final chunk
  // can announce an epoch watermark while a sibling partition's delta for
  // the same epoch is still in flight — a per-helper clock would emit that
  // sibling's windows before its below-watermark records merge.
  int64_t wm = core::kWatermarkMin;
};

struct NodeState {
  int node = 0;
  std::unique_ptr<state::StateBackend> ssb;
  std::vector<std::unique_ptr<perf::CpuContext>> worker_cpus;
  std::vector<int64_t> worker_watermarks;
  std::vector<std::vector<Lane>> worker_lanes;  // per worker
  int finished_workers = 0;
  // Epoch coordination: any worker that observes the byte threshold bumps
  // `epoch_seq`; every worker then drains *its assigned partitions* for
  // that epoch (parallel drain). `epoch_low_wm` is the node low watermark
  // frozen at the bump.
  uint64_t epoch_seq = 0;
  int64_t epoch_low_wm = core::kWatermarkMin;
  bool final_bumped = false;  // the end-of-stream epoch has been announced
  // Per-worker drain progress (mirrors each worker's local drained_seq).
  // Input admission at a checkpoint boundary must wait until EVERY worker
  // has serialized its share of the announced epoch: a fragment is one
  // mutable accumulator per partition, so a post-boundary record pushed
  // before the assigned worker drains would contaminate the boundary
  // epoch's delta — the leader would then snapshot state the helper's
  // recorded input offsets do not cover, and replay after a rollback
  // would double-count those records.
  std::vector<uint64_t> worker_drained_seq;
  std::vector<int64_t> trigger_wms;  // per led partition
  core::ResultSink sink;
  // out[p]: channel towards partition p's current leader (nullptr when this
  // node leads p itself); in: one entry per (helper, partition) feeding us.
  std::vector<RdmaChannel*> out;
  std::vector<InChannel> in;
  // Checkpointing: rounds this node has snapshotted (starts at the restored
  // round), and whether the terminal snapshot has been taken.
  uint64_t snapshots_taken = 0;
  bool terminal_snapshotted = false;
  ReplState* repl = nullptr;
  // Notified on any inbound arrival or credit return at this node; the
  // epoch-drain loop parks here so it can keep pumping inbound channels
  // (releasing their credits) while waiting for its own send credits —
  // without this, two nodes draining towards each other can deadlock.
  std::unique_ptr<sim::Event> activity;

  int64_t NodeLowWatermark() const {
    return *std::min_element(worker_watermarks.begin(),
                             worker_watermarks.end());
  }

  bool channels_done() const {
    for (const InChannel& ic : in) {
      if (!ic.final_seen) return false;
    }
    return true;
  }
};

// One job's full execution state. The DES and the fabric are NOT owned:
// Run() owns one pair per single-job run, RunJobs() shares one pair across
// every concurrent job (DESIGN.md §12) — which is the whole point of the
// multi-tenant design: fairness falls out of one timestamp-ordered event
// queue, and the NIC model contends naturally because every job's channels
// live on the same simulated fabric.
struct SlashRun {
  const core::QuerySpec* query;
  const workloads::Workload* workload;
  ClusterConfig config;
  state::SsbConfig ssb_config;
  sim::Simulator* sim = nullptr;
  rdma::Fabric* fabric = nullptr;
  std::unique_ptr<sim::FaultInjector> injector;
  // Multi-tenant identity: a non-empty tenant labels this job's instruments
  // {tenant=...} and gives it dedicated trace tracks; the quota (job.quota
  // > 0) caps the job's in-flight NIC credits across all of its channels.
  std::string tenant;
  std::unique_ptr<channel::CreditQuota> quota;
  int track_engine = obs::kTrackEngine;
  int track_recovery = obs::kTrackRecovery;
  Nanos drained_at = 0;  // virtual time when the last worker exited
  std::vector<std::unique_ptr<RdmaChannel>> channels;
  size_t attempt_channel_start = 0;  // first channel of the current attempt
  // All NodeStates ever built (coroutines of a torn-down attempt may still
  // be unwinding and referencing theirs); `nodes` indexes the current
  // attempt by physical node id, nullptr for dead nodes.
  std::vector<std::unique_ptr<NodeState>> node_storage;
  std::vector<NodeState*> nodes;
  std::vector<std::unique_ptr<perf::CpuContext>> generator_cpus;
  std::vector<std::unique_ptr<perf::CpuContext>> repl_cpus;
  std::vector<std::unique_ptr<ReplState>> repl_storage;
  // Recovery control plane.
  std::unique_ptr<RecoveryCoordinator> coordinator;
  std::vector<bool> alive;
  std::vector<bool> retired;   // dead and already recovered from
  std::vector<uint64_t> retire_round;  // valid while retired[n]
  std::vector<int> owner;      // partition -> leading node
  std::vector<int> flow_home;  // flow -> node reading it
  int attempt = 1;
  bool recovering = false;
  bool in_teardown = false;
  Nanos recovery_start = 0;
  uint64_t records_at_crash = 0;
  // Failure detection (health.enabled): the monitor, the engine's view of
  // which nodes it quarantined or which self-fenced, and flap suppression.
  std::unique_ptr<health::HealthMonitor> health;
  std::vector<bool> quarantined;
  std::vector<bool> fenced;
  std::vector<uint32_t> quarantine_count;  // per node, for flap suppression
  // Elastic reconfiguration (config.reconfig): the control plane executing
  // the plan, the pre-handoff placement (for migration accounting), the
  // engine's mirror of per-node join rounds, the per-partition load the
  // Rebalancer consumes, and the handoff state machine. A handoff IS a
  // recovery cycle (recovering = true) with reconfig_in_flight
  // distinguishing it for accounting and crash fold-in.
  std::unique_ptr<elastic::ReconfigCoordinator> reconfig_coord;
  std::vector<int> prev_owner;
  std::vector<int> prev_flow_home;
  std::vector<uint64_t> join_round;      // mirrors coordinator join rounds
  std::vector<uint64_t> partition_load;  // delta entries merged per partition
  bool reconfig_in_flight = false;
  Nanos handoff_ns = 0;
  uint64_t partitions_moved = 0;
  uint64_t state_bytes_moved = 0;
  uint64_t records_migrated = 0;
  int workers_running = 0;
  uint64_t restore_floor = 0;  // records_in right after the last restore
  // Stats.
  uint64_t records_in = 0;
  uint64_t records_replayed = 0;
  uint64_t recoveries = 0;
  uint64_t rejoins = 0;
  uint64_t fence_suppressions = 0;
  Nanos recovery_ns = 0;
  uint64_t bytes_replicated = 0;
  // Observability handles (resolved once in Run; tracer null when disabled).
  obs::Histogram* latency = nullptr;  // channel.transfer_latency_ns
  obs::Tracer* tracer = nullptr;
  uint32_t trace_epoch = 0;
  uint32_t trace_snapshot = 0;
  uint32_t trace_window = 0;
  uint32_t trace_recovery = 0;
  uint32_t trace_handoff = 0;
  uint32_t trace_cat = 0;
  bool failed = false;
  Status failure;

  int total_workers() const { return config.nodes * config.workers_per_node; }
  bool checkpointing() const { return config.checkpoint.enabled; }
  bool elastic() const { return config.reconfig != nullptr; }
  uint64_t interval() const {
    return std::max<uint32_t>(1u, config.checkpoint.interval_epochs);
  }
};

void BuildAttempt(SlashRun* run, uint64_t round);
void ArmRecoveryWatchdog(SlashRun* run);

// A node quarantined more than this many times stays out for good: a
// flapping link (e.g. a permanent one-way drop) would otherwise cycle
// quarantine -> rejoin -> quarantine forever. Survivors carry its load.
constexpr uint32_t kMaxQuarantinesForRejoin = 2;

/// Aborts the run cleanly after an unrecoverable fault: records the cause
/// and wakes every parked coroutine so it can observe `failed` and unwind
/// (instead of deadlocking on a channel that will never move again).
void FailRun(SlashRun* run, const Status& cause) {
  if (run->failed) return;
  run->failed = true;
  run->failure = cause;
  if (run->health != nullptr) run->health->Stop();
  if (run->reconfig_coord != nullptr) run->reconfig_coord->Stop();
  for (NodeState* ns : run->nodes) {
    if (ns != nullptr) ns->activity->Notify();
  }
  for (auto& ch : run->channels) {
    ch->credit_event().Notify();
    ch->data_event().Notify();
  }
  for (auto& rs : run->repl_storage) rs->event->Notify();
}

/// Emits and retires every bucket of the partitions this node leads whose
/// trigger watermark passed min(V).
void TryTrigger(SlashRun* run, NodeState* ns, perf::CpuContext* cpu) {
  if (run->fenced[ns->node]) {
    // Fencing invariant: a node without majority contact must not emit.
    // Reached only in the narrow window before the worker observes the
    // fence and parks; the suppressed windows re-fire on unfence (the
    // trigger watermarks make emission idempotent catch-up).
    ++run->fence_suppressions;
    return;
  }
  for (int p = 0; p < run->config.nodes; ++p) {
    if (!ns->ssb->leads(p)) continue;
    // Per-partition watermark: the local epoch low watermark joined with
    // the last delta watermark delivered on each inbound channel feeding
    // this partition (see the InChannel::wm comment for why a per-helper
    // clock would be unsound here).
    int64_t wm = ns->epoch_low_wm;
    for (const InChannel& ic : ns->in) {
      if (ic.partition == p) wm = std::min(wm, ic.wm);
    }
    const int64_t before = ns->trigger_wms[p];
    TriggerWindows(*run->query, wm, ns->ssb->local(p), &ns->sink, cpu,
                   &ns->trigger_wms[p]);
    if (run->tracer != nullptr && ns->trigger_wms[p] != before) {
      run->tracer->Instant(run->sim->now(), run->trace_window, run->trace_cat,
                           ns->node, run->track_engine);
    }
  }
}

/// True when the next checkpoint round's barrier is complete at this node:
/// it announced the boundary epoch itself (or finished its input for good),
/// and every inbound channel has delivered all deltas up to the boundary
/// (or its end-of-stream delta).
bool SnapshotReady(const SlashRun* run, const NodeState* ns) {
  if (!run->checkpointing() || run->failed || ns->terminal_snapshotted) {
    return false;
  }
  // A fenced node must not cut (= commit) a round: the majority side may be
  // recovering past it right now, and a commit here would be the epoch-
  // committed-twice split-brain the fence exists to prevent.
  if (run->fenced[ns->node]) return false;
  const uint64_t boundary = (ns->snapshots_taken + 1) * run->interval();
  if (ns->epoch_seq < boundary && !ns->final_bumped) return false;
  for (const InChannel& ic : ns->in) {
    if (!ic.final_seen && ic.finals_merged < boundary) return false;
  }
  return true;
}

/// Cuts one checkpoint round: serializes every led partition, the input
/// offsets of every lane, and the sink into a blob; registers it with the
/// coordinator; and hands it to the replication stream. When the node's
/// input and every inbound channel are fully drained the snapshot is
/// terminal — it stands in for every later round.
void TakeSnapshot(SlashRun* run, NodeState* ns, perf::CpuContext* cpu) {
  SLASH_CHECK_MSG(!run->fenced[ns->node],
                  "fenced node " << ns->node << " attempted to cut a snapshot");
  // At the barrier every node has merged exactly the same per-peer epoch
  // prefix, so fire any due windows now: the snapshot then captures state,
  // trigger watermarks and sink consistently *after* them.
  TryTrigger(run, ns, cpu);
  const uint64_t round = ns->snapshots_taken + 1;
  std::vector<uint8_t> blob;
  BlobWriter writer(&blob);
  writer.U64(round);
  uint64_t led = 0;
  for (int p = 0; p < run->config.nodes; ++p) {
    if (ns->ssb->leads(p)) ++led;
  }
  writer.U64(led);
  for (int p = 0; p < run->config.nodes; ++p) {
    if (!ns->ssb->leads(p)) continue;
    writer.U64(uint64_t(p));
    writer.I64(ns->trigger_wms[p]);
    std::vector<uint8_t> state;
    ns->ssb->SnapshotPartition(p, &state);
    writer.Bytes(state);
  }
  uint64_t flows = 0;
  for (const auto& lanes : ns->worker_lanes) flows += lanes.size();
  writer.U64(flows);
  for (const auto& lanes : ns->worker_lanes) {
    for (const Lane& lane : lanes) {
      writer.U64(lane.flow);
      writer.U64(lane.consumed);
      writer.I64(lane.last_ts);
    }
  }
  writer.U64(ns->sink.count());
  writer.U64(ns->sink.checksum());
  const auto& rows = ns->sink.rows();
  writer.U64(rows.size());
  for (const auto& row : rows) {
    writer.I64(row.bucket);
    writer.U64(row.key);
    writer.I64(row.value);
  }
  cpu->ChargeBytes(Op::kEpochScanPerByte, blob.size());

  const bool terminal = ns->final_bumped && ns->channels_done();
  if (run->tracer != nullptr) {
    run->tracer->Instant(run->sim->now(), run->trace_snapshot, run->trace_cat,
                         ns->node, run->track_recovery);
  }
  run->coordinator->RecordLocal(ns->node, round, blob);
  if (terminal) {
    run->coordinator->MarkFinalFrom(ns->node, round);
    ns->terminal_snapshotted = true;
  }
  ns->snapshots_taken = round;
  if (ns->repl != nullptr) {
    ns->repl->items.push_back(ReplState::Item{round, std::move(blob)});
    if (terminal) ns->repl->terminal = true;
    ns->repl->event->Notify();
  }
  // The checkpoint covers everything consumed so far: prune the ingest
  // replay buffers and release any back-pressured generator.
  for (const auto& lanes : ns->worker_lanes) {
    for (const Lane& lane : lanes) {
      if (lane.ingest != nullptr) lane.ingest->MarkCheckpoint();
    }
  }
  ns->activity->Notify();  // input suppression lifted
}

void MaybeSnapshot(SlashRun* run, NodeState* ns, perf::CpuContext* cpu) {
  while (SnapshotReady(run, ns)) TakeSnapshot(run, ns, cpu);
}

/// Polls the node's inbound channels and merges delta chunks into the led
/// primaries. Every chunk is entry-aligned and independently mergeable, so
/// *any* worker can take any chunk — merge work spreads across all worker
/// cores, interleaved with query processing (Sec. 7.2.1). Returns true if
/// anything was consumed.
///
/// Watermark rule: only a delta's last chunk (user_tag == 1) carries the
/// helper's low watermark; earlier chunks must not advance the vector
/// clock or a window could trigger before all its state arrived.
bool PollAndMerge(SlashRun* run, NodeState* ns, perf::CpuContext* cpu) {
  bool progressed = false;
  const bool ckpt = run->checkpointing();
  const uint64_t boundary = (ns->snapshots_taken + 1) * run->interval();
  for (InChannel& ic : ns->in) {
    // Checkpoint barrier: once this channel delivered every epoch up to the
    // boundary, its stream is frozen until the round's snapshot is cut —
    // later deltas stay buffered in the channel (credits bound them).
    if (ckpt && !ic.final_seen && ic.finals_merged >= boundary) continue;
    InboundBuffer buffer;
    while (ic.ch->TryPoll(&buffer, cpu)) {
      progressed = true;
      run->latency->Record(run->sim->now() - buffer.send_time);
      state::DeltaEnvelope envelope;
      SLASH_CHECK(ns->ssb
                      ->MergeIntoPrimary(buffer.payload, buffer.payload_len,
                                         &envelope)
                      .ok());
      cpu->Charge(Op::kCrdtMergePerPair, double(envelope.entry_count));
      // Load signal for the Rebalancer: delta entries merged per partition
      // (allocated only for elastic runs).
      if (!run->partition_load.empty()) {
        run->partition_load[ic.partition] += envelope.entry_count;
      }
      const bool last_chunk = buffer.user_tag == 1;
      const int64_t watermark = buffer.watermark;
      SLASH_CHECK(ic.ch->Release(buffer, cpu).ok());
      if (last_chunk) {
        if (watermark > ic.wm) ic.wm = watermark;
        ++ic.finals_merged;
        if (watermark == core::kWatermarkMax) ic.final_seen = true;
        if (ckpt && !ic.final_seen && ic.finals_merged >= boundary) break;
      }
    }
  }
  return progressed;
}

/// The helper partitions worker `w` is responsible for draining (and whose
/// channels it effectively owns as a producer).
std::vector<int> AssignedPartitions(const SlashRun& run, const NodeState& ns,
                                    int w) {
  std::vector<int> partitions;
  int slot = 0;
  for (int p = 0; p < run.config.nodes; ++p) {
    if (ns.ssb->leads(p)) continue;
    if (slot % run.config.workers_per_node == w) partitions.push_back(p);
    ++slot;
  }
  return partitions;
}

/// A serialized delta queued for transmission on one channel: the drain is
/// *non-blocking* — a worker serializes its fragments the moment it
/// observes a new epoch (freeing them for fresh RMWs immediately) and then
/// ships the chunks opportunistically between processing batches, never
/// stalling on credits. This is the full compute/RDMA interleaving of
/// Sec. 5.3: an out-of-credit channel parks only the *send*, not the core.
struct PendingDelta {
  int partition = 0;
  state::DeltaEnvelope envelope;
  std::vector<uint8_t> bytes;  // entries only (envelope re-written per chunk)
  std::vector<state::Partition::DeltaChunk> chunks;
  size_t next_chunk = 0;
  int64_t low_wm = 0;
};

/// Serializes this worker's share of the fragments for the current epoch
/// and appends the resulting deltas to its send queue (protocol steps 1-2
/// and the sender half of step 4).
void SerializeShare(SlashRun* run, NodeState* ns,
                    const std::vector<int>& partitions, int64_t low_wm,
                    std::deque<PendingDelta>* queue, perf::CpuContext* cpu) {
  for (int p : partitions) {
    PendingDelta delta;
    delta.partition = p;
    delta.low_wm = low_wm;
    std::vector<uint8_t> scratch;
    delta.envelope = ns->ssb->DrainFragment(p, low_wm, &scratch);
    cpu->Charge(Op::kEpochScanPerByte, double(scratch.size()));
    delta.bytes.assign(scratch.begin() + sizeof(state::DeltaEnvelope),
                       scratch.end());
    delta.chunks = state::Partition::SplitDelta(
        delta.bytes.data(), delta.bytes.size(),
        ns->out[p]->payload_capacity() - sizeof(state::DeltaEnvelope));
    queue->push_back(std::move(delta));
  }
}

/// Ships as many queued delta chunks as credits currently allow (protocol
/// step 3). Never blocks; returns true if anything was sent.
bool PumpSendQueue(SlashRun* run, NodeState* ns,
                   std::deque<PendingDelta>* queue, perf::CpuContext* cpu) {
  bool sent = false;
  while (!queue->empty()) {
    PendingDelta& delta = queue->front();
    RdmaChannel* ch = ns->out[delta.partition];
    while (delta.next_chunk < delta.chunks.size()) {
      SlotRef slot;
      if (!ch->TryAcquire(&slot, cpu)) return sent;  // out of credit: later
      const auto& chunk = delta.chunks[delta.next_chunk];
      state::DeltaEnvelope chunk_envelope = delta.envelope;
      chunk_envelope.entry_count = chunk.entries;
      std::memcpy(slot.payload, &chunk_envelope, sizeof(chunk_envelope));
      if (chunk.length > 0) {  // empty delta: bytes.data() may be null
        std::memcpy(slot.payload + sizeof(chunk_envelope),
                    delta.bytes.data() + chunk.offset, chunk.length);
      }
      cpu->ChargeBytes(Op::kBufferCopyPerByte,
                       sizeof(chunk_envelope) + chunk.length);
      const bool last = delta.next_chunk + 1 == delta.chunks.size();
      const Status post = ch->Post(slot, sizeof(chunk_envelope) + chunk.length,
                                   /*user_tag=*/last ? 1 : 0,
                                   /*watermark=*/last ? delta.low_wm
                                                      : core::kWatermarkMin,
                                   cpu);
      if (!post.ok()) {
        // Only a broken channel rejects an in-order post; the close handler
        // (or the crash teardown) has already dealt with the run — stop
        // pumping and let the worker exit.
        SLASH_CHECK(ch->broken());
        return sent;
      }
      sent = true;
      ++delta.next_chunk;
    }
    queue->pop_front();
  }
  return sent;
}

/// Bumps the node epoch (step 1): freezes the low watermark and advances
/// the per-partition epoch counters; workers drain their shares when they
/// observe the new sequence number.
void BumpEpoch(SlashRun* run, NodeState* ns) {
  if (run->tracer != nullptr) {
    run->tracer->Instant(run->sim->now(), run->trace_epoch, run->trace_cat,
                         ns->node, run->track_engine);
  }
  ns->ssb->BeginEpoch();
  ++ns->epoch_seq;
  ns->epoch_low_wm = ns->NodeLowWatermark();
  ns->activity->Notify();  // wake idle workers to drain their shares
}

/// A source-node generator (rdma_ingestion mode): streams one flow's wire
/// records into its executor worker's ingest channel at line rate, then
/// posts a final marker. On recovery the generator is restarted with a
/// `skip`: the flow is deterministic, so fast-forwarding past the
/// checkpointed offset re-derives the exact cut (the skip is part of the
/// modeled recovery delay, not the data path).
sim::Task Generator(SlashRun* run, RdmaChannel* ch, uint64_t flow,
                    uint64_t skip, perf::CpuContext* cpu, int attempt) {
  auto source = run->workload->MakeFlow(int(flow), run->total_workers(),
                                        run->config.records_per_worker,
                                        run->config.seed);
  Record r;
  bool more = true;
  for (uint64_t i = 0; i < skip && more; ++i) more = source->Next(&r);
  if (more) more = source->Next(&r);
  int64_t last_ts = core::kWatermarkMin;
  while (more) {
    SlotRef slot;
    while (!ch->TryAcquire(&slot, cpu)) {
      if (run->failed || run->attempt != attempt || ch->broken()) co_return;
      const Nanos wait_start = run->sim->now();
      co_await ch->credit_event().Wait();
      cpu->ChargeWait(run->sim->now() - wait_start);
    }
    core::RecordWriter writer(slot.payload, ch->payload_capacity());
    do {
      const uint16_t wire_size = run->workload->wire_size(r.stream_id);
      cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
      cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
      if (!writer.Append(r, wire_size)) break;
      last_ts = r.timestamp;
      more = source->Next(&r);
    } while (more);
    if (!ch->Post(slot, writer.bytes_used(), /*user_tag=*/0,
                  /*watermark=*/last_ts, cpu)
             .ok()) {
      SLASH_CHECK(ch->broken());
      co_return;
    }
    co_await cpu->Sync();
  }
  SlotRef final_slot;
  while (!ch->TryAcquire(&final_slot, cpu)) {
    if (run->failed || run->attempt != attempt || ch->broken()) co_return;
    const Nanos wait_start = run->sim->now();
    co_await ch->credit_event().Wait();
    cpu->ChargeWait(run->sim->now() - wait_start);
  }
  if (!ch->Post(final_slot, 0, /*user_tag=*/1,
                /*watermark=*/core::kWatermarkMax, cpu)
           .ok()) {
    SLASH_CHECK(ch->broken());
    co_return;
  }
  co_await cpu->Sync();
}

// Replication user_tag encoding: (round << 2) | flags, flag 1 = last chunk
// of a blob, flag 2 = terminal marker (the source will snapshot no more).
constexpr uint64_t kReplLastChunk = 1;
constexpr uint64_t kReplTerminal = 2;

/// Ships every snapshot a node takes to one replication target, chunked to
/// the channel's slot size, then a terminal marker once the node's terminal
/// snapshot is enqueued.
sim::Task Replicator(SlashRun* run, ReplState* rs, RdmaChannel* ch,
                     perf::CpuContext* cpu, int attempt) {
  size_t cursor = 0;
  for (;;) {
    if (run->failed || run->attempt != attempt || ch->broken()) co_return;
    if (cursor < rs->items.size()) {
      const ReplState::Item& item = rs->items[cursor];
      const uint64_t cap = ch->payload_capacity();
      uint64_t off = 0;
      do {
        SlotRef slot;
        while (!ch->TryAcquire(&slot, cpu)) {
          if (run->failed || run->attempt != attempt || ch->broken()) {
            co_return;
          }
          const Nanos wait_start = run->sim->now();
          co_await ch->credit_event().Wait();
          cpu->ChargeWait(run->sim->now() - wait_start);
        }
        const uint64_t len = std::min(cap, uint64_t(item.bytes.size()) - off);
        std::memcpy(slot.payload, item.bytes.data() + off, len);
        cpu->ChargeBytes(Op::kBufferCopyPerByte, len);
        off += len;
        const bool last = off == item.bytes.size();
        const uint64_t tag = (item.round << 2) | (last ? kReplLastChunk : 0);
        if (!ch->Post(slot, len, tag, /*watermark=*/0, cpu).ok()) {
          SLASH_CHECK(ch->broken());
          co_return;
        }
        co_await cpu->Sync();
      } while (off < item.bytes.size());
      ++cursor;
      continue;
    }
    if (rs->terminal) break;
    const Nanos wait_start = run->sim->now();
    co_await rs->event->Wait();
    cpu->ChargeWait(run->sim->now() - wait_start);
  }
  SlotRef slot;
  while (!ch->TryAcquire(&slot, cpu)) {
    if (run->failed || run->attempt != attempt || ch->broken()) co_return;
    const Nanos wait_start = run->sim->now();
    co_await ch->credit_event().Wait();
    cpu->ChargeWait(run->sim->now() - wait_start);
  }
  if (!ch->Post(slot, 0, kReplTerminal, /*watermark=*/0, cpu).ok()) co_return;
  co_await cpu->Sync();
}

/// Receives a peer's snapshot stream on node `holder` and registers each
/// completed blob with the coordinator (the holder now owns a full copy the
/// dead node's heir can restore from). Exits on the terminal marker.
sim::Task ReplicaReceiver(SlashRun* run, int src, int holder, RdmaChannel* ch,
                          perf::CpuContext* cpu, int attempt) {
  for (;;) {
    if (run->failed || run->attempt != attempt) co_return;
    InboundBuffer buffer;
    if (!ch->TryPoll(&buffer, cpu)) {
      if (ch->broken()) co_return;
      const Nanos wait_start = run->sim->now();
      co_await ch->data_event().Wait();
      cpu->ChargeWait(run->sim->now() - wait_start);
      continue;
    }
    const uint64_t tag = buffer.user_tag;
    const uint64_t len = buffer.payload_len;
    SLASH_CHECK(ch->Release(buffer, cpu).ok());
    if (tag & kReplTerminal) co_return;
    run->bytes_replicated += len;
    if (tag & kReplLastChunk) {
      run->coordinator->RecordReplica(src, tag >> 2, holder);
    }
  }
}

/// One worker coroutine: processes this worker's input lanes push-based,
/// interleaved with draining its assigned helper partitions, merging
/// inbound deltas, cutting checkpoint snapshots at round barriers, and
/// shipping queued chunks — the compute/RDMA coroutine interleaving of
/// Sec. 5.3.
sim::Task Worker(SlashRun* run, NodeState* ns, int w, int attempt) {
  ++run->workers_running;
  perf::CpuContext* cpu = ns->worker_cpus[w].get();
  core::RecordPipeline pipeline(run->query, cpu, run->config.execution);
  std::vector<Lane>& lanes = ns->worker_lanes[w];
  const std::vector<int> my_partitions = AssignedPartitions(*run, *ns, w);
  // A fresh (post-restore) worker starts at the restored epoch sequence:
  // every epoch up to the checkpoint cut was drained by the previous
  // attempt and is part of the restored state.
  uint64_t drained_seq = ns->epoch_seq;
  std::deque<PendingDelta> send_queue;
  uint8_t wire_buf[512];
  size_t lane_cursor = 0;
  Record r;
  bool more = true;

  auto halted = [&] { return run->failed || run->attempt != attempt; };

  uint64_t batch_records = 0;
  uint64_t batch_bytes = 0;
  auto process = [&](Record* rec) {
    ++batch_records;
    const uint16_t wire_size = run->workload->wire_size(rec->stream_id);
    batch_bytes += wire_size;
    if (!run->config.rdma_ingestion) {
      cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
    }
    if (!pipeline.Process(rec)) return;
    pipeline.ChargeStatefulPrologue();
    const int64_t bucket = run->query->window.BucketOf(rec->timestamp);
    cpu->Charge(Op::kIndexProbe);
    if (run->query->is_join()) {
      // Holistic state: append the full wire record (state realism).
      SLASH_CHECK_LE(size_t{wire_size}, sizeof(wire_buf));
      SerializeWireRecord(*rec, wire_size, wire_buf);
      cpu->Charge(Op::kStateAppend);
      cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
      ns->ssb->Append(rec->key, bucket, rec->stream_id, wire_buf, wire_size);
    } else {
      cpu->Charge(Op::kStateRmw);
      ns->ssb->UpdateAggregate(rec->key, bucket, rec->value);
    }
  };

  // Columnar staging (config.operator_batch > 1): input records are
  // appended charge-free into a SoA RecordBatch and processed in append
  // order, so the per-record charge sequence — and with it every
  // virtual-time decision — stays byte-identical to the record-at-a-time
  // path (DESIGN.md §11). Lane bookkeeping (last_ts, consumed) happens at
  // stage time, exactly where the scalar path updates it.
  const uint32_t operator_batch =
      std::max<uint32_t>(1u, run->config.operator_batch);
  core::RecordBatch batch(operator_batch);
  auto flush_batch = [&] {
    for (uint32_t i = 0; i < batch.size(); ++i) {
      Record staged = batch.Get(i);
      process(&staged);
    }
    batch.Clear();
  };
  auto stage = [&](const Record& rec) {
    if (operator_batch == 1) {
      Record row = rec;
      process(&row);
      return;
    }
    SLASH_CHECK(batch.Append(rec));
    if (batch.full()) flush_batch();
  };

  // A worker may only exit once the node's end-of-stream epoch has been
  // announced and it has shipped its share of it — otherwise its
  // partitions' final deltas (and watermarks) would never reach their
  // leaders. A failed or torn-down run releases workers immediately.
  while (!halted() &&
         (more || !ns->channels_done() || drained_seq < ns->epoch_seq ||
          !ns->final_bumped || !send_queue.empty())) {
    // Self-fenced (no majority contact): park without processing, draining,
    // committing, or emitting until the fence lifts or the attempt is torn
    // down. The health monitor keeps ticking, so a healed link unfences.
    if (run->fenced[ns->node]) {
      const Nanos wait_start = run->sim->now();
      co_await ns->activity->Wait();
      cpu->ChargeWait(run->sim->now() - wait_start);
      continue;
    }
    // Serialize this worker's share of any newly announced epoch (frees
    // the fragments for fresh RMWs immediately) and ship whatever chunks
    // current credits allow — without ever stalling the core.
    if (drained_seq < ns->epoch_seq) {
      drained_seq = ns->epoch_seq;
      ns->worker_drained_seq[w] = drained_seq;
      SerializeShare(run, ns, my_partitions, ns->epoch_low_wm, &send_queue,
                     cpu);
      TryTrigger(run, ns, cpu);
      // Siblings may be parked waiting for this drain before they can admit
      // post-epoch input (see the suppression condition below).
      ns->activity->Notify();
    }
    const bool sent = PumpSendQueue(run, ns, &send_queue, cpu);
    // RDMA coroutine work: merge inbound delta chunks (cheap when none
    // pending); any worker takes any chunk.
    const bool merged = PollAndMerge(run, ns, cpu);
    if (merged) TryTrigger(run, ns, cpu);
    MaybeSnapshot(run, ns, cpu);
    if (halted()) break;

    // Input suppression at a checkpoint boundary: once this node announced
    // the boundary epoch, no worker may push post-boundary records into the
    // led primaries until the round's snapshot is cut — the input offsets
    // recorded in the blob must cover exactly the records whose remote
    // contributions sit in epochs the barrier includes. The snapshot cut
    // alone is not enough to re-admit input: a sibling worker may not have
    // drained its share of the boundary epoch yet, and a partition fragment
    // is one mutable accumulator — a post-boundary RMW pushed before that
    // drain would ride inside the boundary delta, land in the LEADER's
    // round blob, and be double-counted when a later rollback replays this
    // node's input from the recorded offsets.
    bool epoch_drained = true;
    for (const uint64_t seq : ns->worker_drained_seq) {
      epoch_drained = epoch_drained && seq >= ns->epoch_seq;
    }
    const bool suppressed =
        run->checkpointing() &&
        (!epoch_drained ||
         ns->epoch_seq >= (ns->snapshots_taken + 1) * run->interval());

    bool input_progress = false;
    if (more && !suppressed) {
      batch_records = 0;
      batch_bytes = 0;
      if (!run->config.rdma_ingestion) {
        // Round-robin across this worker's lanes (an heir's workers carry
        // the crashed node's flows alongside their own). `pulled` counts
        // staged records so the source-batch bound holds even while
        // processing is deferred into the columnar batch.
        uint64_t pulled = 0;
        while (!lanes.empty() && pulled < run->config.source_batch) {
          Lane* lane = nullptr;
          const size_t n = lanes.size();
          for (size_t step = 0; step < n; ++step) {
            const size_t idx = (lane_cursor + step) % n;
            if (!lanes[idx].done) {
              lane = &lanes[idx];
              lane_cursor = (idx + 1) % n;
              break;
            }
          }
          if (lane == nullptr) break;
          if (!lane->source->Next(&r)) {
            lane->done = true;
            lane->last_ts = core::kWatermarkMax;
            continue;
          }
          lane->last_ts = r.timestamp;
          ++lane->consumed;
          ++pulled;
          stage(r);
        }
        flush_batch();
      } else {
        // Ingest one RDMA-delivered buffer per lane, if any has landed.
        for (Lane& lane : lanes) {
          if (lane.done) continue;
          InboundBuffer buffer;
          if (!lane.ingest->TryPoll(&buffer, cpu)) continue;
          if (buffer.user_tag == 1) {
            lane.done = true;
            lane.last_ts = core::kWatermarkMax;
            SLASH_CHECK(lane.ingest->Release(buffer, cpu).ok());
            input_progress = true;
            continue;
          }
          core::RecordReader reader(buffer.payload, buffer.payload_len);
          while (reader.Next(&r)) {
            lane.last_ts = r.timestamp;
            ++lane.consumed;
            stage(r);
          }
          // Flush before Release: the release's credit-update charge must
          // stay ordered after the records' processing charges.
          flush_batch();
          SLASH_CHECK(lane.ingest->Release(buffer, cpu).ok());
        }
      }
      bool lanes_done = true;
      int64_t wm = core::kWatermarkMax;
      for (const Lane& lane : lanes) {
        lanes_done = lanes_done && lane.done;
        if (!lane.done) wm = std::min(wm, lane.last_ts);
      }
      ns->worker_watermarks[w] = lanes_done ? core::kWatermarkMax : wm;
      input_progress = input_progress || batch_records > 0 || lanes_done;
      run->records_in += batch_records;
      cpu->CountRecords(batch_records);
      ns->ssb->AccountProcessedBytes(batch_bytes);
      co_await cpu->Sync();
      if (halted()) break;
      if (lanes_done) {
        more = false;
        if (++ns->finished_workers == run->config.workers_per_node) {
          // Ahead-of-time epoch termination at end of stream: the final
          // drain carries watermark kWatermarkMax.
          ns->final_bumped = true;
          BumpEpoch(run, ns);
        }
      } else if (ns->ssb->EpochDue()) {
        BumpEpoch(run, ns);
      }
    }
    if (!merged && !sent && !input_progress && !halted() &&
        drained_seq == ns->epoch_seq && !SnapshotReady(run, ns) &&
        (more || !ns->channels_done() || !ns->final_bumped ||
         !send_queue.empty())) {
      // Nothing mergeable, nothing sendable (blocked on credits), no input
      // admissible, but not exit-ready either: park until credits return,
      // data arrives, a new epoch is announced, or a snapshot lifts the
      // suppression. The exit- and snapshot-readiness checks in the
      // condition guarantee we never park past the last event.
      const Nanos wait_start = run->sim->now();
      co_await ns->activity->Wait();
      cpu->ChargeWait(run->sim->now() - wait_start);
    } else {
      co_await cpu->Sync();
    }
  }
  if (!halted() && !run->fenced[ns->node]) {
    // Fully drained: cut any outstanding boundary/terminal snapshot, then
    // fire the final safety trigger — whichever worker observes global
    // completion last emits the remaining windows (idempotent via
    // trigger_wms). Skipped on an aborted or torn-down attempt.
    MaybeSnapshot(run, ns, cpu);
    TryTrigger(run, ns, cpu);
  }
  co_await cpu->Sync();
  --run->workers_running;
  if (run->workers_running == 0 && run->attempt == attempt &&
      !run->recovering && !run->failed) {
    // Per-job drain point (obs::metric::kJobDrainNs): in a multi-job run
    // the shared makespan is the LAST job's drain, so each job records its
    // own.
    run->drained_at = run->sim->now();
  }
  if (run->health != nullptr && run->workers_running == 0 &&
      run->attempt == attempt && !run->recovering && !run->failed) {
    // Last worker of the surviving attempt is out: stop the heartbeat so
    // the event queue can drain. (A failed run stops it in FailRun; workers
    // of a torn-down attempt never match the current attempt.)
    run->health->Stop();
  }
  if (run->reconfig_coord != nullptr && run->workers_running == 0 &&
      run->attempt == attempt && !run->recovering && !run->failed) {
    // Same for the reconfiguration control plane: a drained job takes no
    // further membership changes (late scheduled events are consumed as
    // no-ops, but the trigger sampling chain must stop re-arming).
    run->reconfig_coord->Stop();
  }
}

/// Tears the current attempt down: every channel of the attempt dies
/// (survivors' channels carry in-flight epochs that are ahead of the
/// rollback point). Coroutines observe the attempt bump and unwind; close
/// handlers must not fail the run while we do this on purpose.
void TearDownAttempt(SlashRun* run) {
  run->in_teardown = true;
  for (size_t i = run->attempt_channel_start; i < run->channels.size(); ++i) {
    run->channels[i]->Abort(
        Status::Unavailable("attempt torn down for crash recovery"));
  }
  for (NodeState* ns : run->nodes) {
    if (ns != nullptr) ns->activity->Notify();
  }
  for (auto& rs : run->repl_storage) rs->event->Notify();
  run->in_teardown = false;
}

/// Completes a scheduled rebuild once the modeled recovery delay elapsed.
/// A network partition that opened during the delay blocks completion —
/// the new mesh would OpenFlow across the cut — so the attempt holds and
/// re-polls until the cut heals; the recovery watchdog converts a cut that
/// never heals into a clean deadline abort instead of a stuck rebuild.
void FinishRebuild(SlashRun* run, uint64_t round, int trace_node,
                   int attempt) {
  // A crash during the wait superseded this rebuild (the fold-in path
  // bumped the attempt and scheduled its own).
  if (run->failed || run->attempt != attempt) return;
  for (int a = 0; a < run->config.nodes; ++a) {
    if (!run->alive[a]) continue;
    for (int b = a + 1; b < run->config.nodes; ++b) {
      if (!run->alive[b]) continue;
      if (run->fabric->Partitioned(a, b)) {
        const Nanos retry =
            std::max<Nanos>(run->config.health.heartbeat_interval,
                            10 * kMicrosecond);
        run->sim->ScheduleAt(run->sim->now() + retry,
                             [run, round, trace_node, attempt] {
                               FinishRebuild(run, round, trace_node, attempt);
                             });
        return;
      }
    }
  }
  if (run->reconfig_in_flight) {
    run->handoff_ns += run->sim->now() - run->recovery_start;
    if (run->tracer != nullptr) {
      run->tracer->End(run->sim->now(), run->trace_handoff, run->trace_cat,
                       trace_node, obs::kTrackElastic);
    }
  } else {
    run->recovery_ns += run->sim->now() - run->recovery_start;
    if (run->tracer != nullptr) {
      run->tracer->End(run->sim->now(), run->trace_recovery, run->trace_cat,
                       trace_node, run->track_recovery);
    }
  }
  BuildAttempt(run, round);
  run->reconfig_in_flight = false;
  run->recovering = false;
}

/// Schedules the rebuild of the next attempt at rollback round `round`
/// after the modeled recovery delay (channel setup + restore streaming),
/// and arms the progress watchdog over it.
void ScheduleRebuild(SlashRun* run, uint64_t round, int trace_node) {
  uint64_t restore_bytes = 0;
  for (int n = 0; n < run->config.nodes; ++n) {
    const std::vector<uint8_t>* blob = run->coordinator->BlobFor(n, round);
    if (blob != nullptr) restore_bytes += blob->size();
  }
  uint64_t new_channels = 0;
  for (int h = 0; h < run->config.nodes; ++h) {
    if (!run->alive[h]) continue;
    for (int p = 0; p < run->config.nodes; ++p) {
      if (run->owner[p] != h) ++new_channels;
    }
  }
  const Nanos delay = kChannelSetupCost * Nanos(new_channels) +
                      Nanos(restore_bytes / kRestoreBytesPerNs);
  const int attempt = run->attempt;
  run->sim->ScheduleAt(run->sim->now() + delay,
                       [run, round, trace_node, attempt] {
                         FinishRebuild(run, round, trace_node, attempt);
                       });
  ArmRecoveryWatchdog(run);
}

/// Common recovery entry for declared crashes and quarantined suspects:
/// `failed_nodes` were just excluded (run->alive already updated). Rolls
/// every survivor back to the latest round with a live copy of every
/// node's snapshot and hands each failed node's partitions and flows to an
/// heir holding its replica.
void StartRecovery(SlashRun* run, const std::vector<int>& failed_nodes) {
  const int trace_node = failed_nodes.front();
  run->recovering = true;
  ++run->recoveries;
  ++run->attempt;
  run->recovery_start = run->sim->now();
  run->records_at_crash = run->records_in;
  if (run->tracer != nullptr) {
    run->tracer->Begin(run->sim->now(), run->trace_recovery, run->trace_cat,
                       trace_node, run->track_recovery);
  }
  TearDownAttempt(run);
  const uint64_t round = run->coordinator->LatestRecoverableRound(run->alive);
  for (int node : failed_nodes) {
    int heir = run->coordinator->FirstLiveHolder(node, round, run->alive);
    if (heir < 0) {
      for (int i = 1; i <= run->config.nodes && heir < 0; ++i) {
        const int cand = (node + i) % run->config.nodes;
        if (run->alive[cand]) heir = cand;
      }
    }
    for (int p = 0; p < run->config.nodes; ++p) {
      if (run->owner[p] == node) run->owner[p] = heir;
    }
    for (size_t f = 0; f < run->flow_home.size(); ++f) {
      if (run->flow_home[f] == node) run->flow_home[f] = heir;
    }
  }
  // Rounds past the rollback point describe the torn-down timeline; the new
  // attempt regenerates them under the post-recovery partition placement.
  run->coordinator->DiscardRoundsAfter(round);
  if (run->elastic()) {
    for (int n = 0; n < run->config.nodes; ++n) {
      run->join_round[n] = std::min<uint64_t>(run->join_round[n], round);
    }
  }
  ScheduleRebuild(run, round, trace_node);
}

/// Fabric crash callback: turns a kNodeCrash fault into either a clean
/// abort (no checkpointing to recover from) or a recovery — tear the
/// current attempt down, pick the rollback round and the dead node's heir,
/// and schedule the rebuild after the modeled recovery delay.
void OnNodeCrash(SlashRun* run, int node) {
  if (run->failed) return;
  if (node >= run->config.nodes) {
    FailRun(run, Status::Unavailable(
                     "ingestion source node crashed: no upstream to replay"));
    return;
  }
  // A crash of an already-quarantined node changes nothing: its partitions
  // were re-homed when it was suspected. (It can simply never rejoin.)
  if (!run->alive[node]) return;
  if (!run->checkpointing()) {
    FailRun(run,
            Status::Unavailable("node crashed with checkpointing disabled"));
    return;
  }
  if (run->recovering) {
    if (!run->reconfig_in_flight) {
      FailRun(run, Status::Unavailable(
                       "node crashed while a recovery was already in flight"));
      return;
    }
    // Crash mid-handoff: fold both events into ONE fresh recovery. The
    // attempt is already torn down (no second teardown); account the
    // aborted handoff, re-pick the rollback round without the dead node,
    // and re-home its partitions and flows onto an heir.
    run->alive[node] = false;
    int live = 0;
    for (int n = 0; n < run->config.nodes; ++n) live += run->alive[n] ? 1 : 0;
    if (live == 0) {
      FailRun(run, Status::Unavailable("last node crashed: no survivors"));
      return;
    }
    run->handoff_ns += run->sim->now() - run->recovery_start;
    if (run->tracer != nullptr) {
      run->tracer->End(run->sim->now(), run->trace_handoff, run->trace_cat,
                       node, obs::kTrackElastic);
    }
    run->reconfig_in_flight = false;
    ++run->recoveries;
    ++run->attempt;
    run->recovery_start = run->sim->now();
    if (run->tracer != nullptr) {
      run->tracer->Begin(run->sim->now(), run->trace_recovery, run->trace_cat,
                         node, run->track_recovery);
    }
    const uint64_t round =
        run->coordinator->LatestRecoverableRound(run->alive);
    int heir = run->coordinator->FirstLiveHolder(node, round, run->alive);
    if (heir < 0) {
      for (int i = 1; i <= run->config.nodes && heir < 0; ++i) {
        const int cand = (node + i) % run->config.nodes;
        if (run->alive[cand]) heir = cand;
      }
    }
    for (int p = 0; p < run->config.nodes; ++p) {
      if (run->owner[p] == node) run->owner[p] = heir;
    }
    for (size_t f = 0; f < run->flow_home.size(); ++f) {
      if (run->flow_home[f] == node) run->flow_home[f] = heir;
    }
    run->coordinator->DiscardRoundsAfter(round);
    for (int n = 0; n < run->config.nodes; ++n) {
      run->join_round[n] = std::min<uint64_t>(run->join_round[n], round);
    }
    ScheduleRebuild(run, round, node);
    return;
  }
  run->alive[node] = false;
  int live = 0;
  for (int n = 0; n < run->config.nodes; ++n) live += run->alive[n] ? 1 : 0;
  if (live == 0) {
    FailRun(run, Status::Unavailable("last node crashed: no survivors"));
    return;
  }
  StartRecovery(run, {node});
}

/// HealthMonitor accusation: a majority-side monitor reports `suspects`
/// unreachable. Quarantines them and runs the exact crash-recovery path —
/// epoch-aligned rollback, heirs, replay. Unlike a declared crash, a
/// quarantined node may later rejoin (the monitor keeps probing it).
void OnSuspicion(SlashRun* run, int monitor, const std::vector<int>& suspects) {
  if (run->failed || run->recovering || run->in_teardown) return;
  // A quarantined node's opinion must not drive cluster decisions.
  if (monitor < run->config.nodes && run->quarantined[monitor]) return;
  std::vector<int> fresh;
  for (int s : suspects) {
    if (s >= 0 && s < run->config.nodes && run->alive[s] &&
        !run->quarantined[s]) {
      fresh.push_back(s);
    }
  }
  if (fresh.empty()) return;
  if (!run->checkpointing()) {
    FailRun(run, Status::Unavailable(
                     "node suspected unreachable with checkpointing "
                     "disabled: nothing to recover from"));
    return;
  }
  for (int s : fresh) {
    run->quarantined[s] = true;
    ++run->quarantine_count[s];
    run->health->SetQuarantined(s, true);
    run->alive[s] = false;
  }
  int live = 0;
  for (int n = 0; n < run->config.nodes; ++n) live += run->alive[n] ? 1 : 0;
  if (live == 0) {
    FailRun(run, Status::Unavailable("every node suspected: no survivors"));
    return;
  }
  StartRecovery(run, fresh);
}

/// A node lost contact with the majority and fenced itself: park its
/// workers (they check the flag and wait on the node's activity event).
void OnSelfFence(SlashRun* run, int node) {
  if (run->failed || node >= run->config.nodes) return;
  run->fenced[node] = true;
  if (run->nodes[node] != nullptr) run->nodes[node]->activity->Notify();
}

void OnUnfence(SlashRun* run, int node) {
  if (run->failed || node >= run->config.nodes) return;
  run->fenced[node] = false;
  if (run->nodes[node] != nullptr) run->nodes[node]->activity->Notify();
}

/// A quarantined node answered a liveness probe within the rpc deadline:
/// the partition healed (or the gray episode ended). Rejoin it via the
/// snapshot-restore path: roll the cluster back to the latest round that
/// includes the node's own blobs, restore its identity placement, replay.
void OnRejoin(SlashRun* run, int node) {
  if (run->failed || run->recovering || run->in_teardown) return;
  if (node >= run->config.nodes || !run->quarantined[node]) return;
  if (run->fabric->node_dead(node)) return;  // actually crashed: stays out
  if (run->health->fenced(node)) return;     // it cannot see the majority yet
  if (run->quarantine_count[node] > kMaxQuarantinesForRejoin) return;  // flaps
  run->quarantined[node] = false;
  run->health->SetQuarantined(node, false);
  run->alive[node] = true;
  run->retired[node] = false;
  run->coordinator->UnretireNode(node);
  ++run->rejoins;
  ++run->attempt;
  run->recovering = true;
  run->recovery_start = run->sim->now();
  run->records_at_crash = run->records_in;
  if (run->tracer != nullptr) {
    run->tracer->Begin(run->sim->now(), run->trace_recovery, run->trace_cat,
                       node, run->track_recovery);
  }
  TearDownAttempt(run);
  // The rejoined node takes its identity placement back: its own partition
  // and the flows that originally homed on it.
  run->owner[node] = node;
  for (size_t f = 0; f < run->flow_home.size(); ++f) {
    if (int(f) / run->config.workers_per_node == node) {
      run->flow_home[f] = node;
    }
  }
  const uint64_t round = run->coordinator->LatestRecoverableRound(run->alive);
  run->coordinator->DiscardRoundsAfter(round);
  if (run->elastic()) {
    for (int n = 0; n < run->config.nodes; ++n) {
      run->join_round[n] = std::min<uint64_t>(run->join_round[n], round);
    }
  }
  ScheduleRebuild(run, round, node);
}

/// Shared epilogue of a join/leave handoff: re-place orphan partitions and
/// flows over the new active set by observed load, count the moves, roll
/// the blob store back, and schedule the rebuild. `run->alive` already
/// reflects the new membership; `round` is the handoff's rollback round.
void FinishMembershipChange(SlashRun* run, int node, uint64_t round) {
  run->prev_owner = run->owner;
  run->prev_flow_home = run->flow_home;
  run->owner =
      elastic::Rebalancer::PlacePartitions(run->alive, run->partition_load);
  run->flow_home = elastic::Rebalancer::PlaceFlows(
      run->alive, run->config.workers_per_node, run->total_workers());
  for (int p = 0; p < run->config.nodes; ++p) {
    if (run->owner[p] != run->prev_owner[p]) ++run->partitions_moved;
  }
  run->coordinator->DiscardRoundsAfter(round);
  for (int n = 0; n < run->config.nodes; ++n) {
    run->join_round[n] = std::min<uint64_t>(run->join_round[n], round);
  }
  ScheduleRebuild(run, round, node);
}

/// True while an active network partition separates any pair of the nodes
/// that would participate in the attempt rebuilt for a membership change
/// involving `node`: the live members plus the joiner/leaver itself (a
/// leaver still serves its checkpoint blobs during the handoff). A change
/// cannot reconfigure the mesh across a cut — OpenFlow/Connect across an
/// active partition is a control-plane refusal — so the event defers until
/// the cut heals (or, if it never does, until the run-deadline abort).
bool PartitionBlocksMembership(const SlashRun* run, int node) {
  for (int a = 0; a < run->config.nodes; ++a) {
    if (!run->alive[a] && a != node) continue;
    for (int b = a + 1; b < run->config.nodes; ++b) {
      if (!run->alive[b] && b != node) continue;
      if (run->fabric->Partitioned(a, b)) return true;
    }
  }
  return false;
}

/// ReconfigCoordinator join callback. Returns false (defer + retry) while a
/// recovery or an earlier handoff is in flight — handoffs are serialized —
/// or while a network partition cuts the membership, and true when the
/// event is consumed: executed, or moot (run over, already active, node
/// actually dead). The handoff itself reuses the recovery machinery:
/// epoch-aligned teardown, rollback to the latest recoverable round, state
/// restore from checkpoint blobs by one-sided READs, deterministic tail
/// replay — with a REBALANCED placement instead of an heir map.
bool OnNodeJoin(SlashRun* run, int node) {
  if (run->failed) return true;
  if (run->recovering || run->in_teardown) return false;
  if (run->workers_running == 0) return true;    // drained: nothing to join
  if (run->alive[node]) return true;             // already a member
  if (run->fabric->node_dead(node)) return true; // crashed: cannot join
  if (PartitionBlocksMembership(run, node)) return false;
  ++run->attempt;
  run->recovering = true;
  run->reconfig_in_flight = true;
  run->recovery_start = run->sim->now();
  run->records_at_crash = run->records_in;
  if (run->tracer != nullptr) {
    run->tracer->Begin(run->sim->now(), run->trace_handoff, run->trace_cat,
                       node, obs::kTrackElastic);
  }
  TearDownAttempt(run);
  run->alive[node] = true;
  // The joiner is exempt from the round requirement (it was retired at
  // round 0, or JoinNode below re-exempts it), so the rollback round is
  // whatever the incumbents can restore — typically the latest boundary.
  const uint64_t round = run->coordinator->LatestRecoverableRound(run->alive);
  run->coordinator->JoinNode(node, round);
  run->retired[node] = false;
  run->retire_round[node] = 0;
  run->join_round[node] = round;
  if (run->health != nullptr) run->health->SetMembership(node, true);
  FinishMembershipChange(run, node, round);
  return true;
}

/// ReconfigCoordinator leave callback; same return contract as OnNodeJoin.
/// A graceful leave differs from a crash in two ways: the rollback round is
/// chosen while the leaver still counts as a live holder of its own blobs
/// (it stays reachable for one-sided READs until the handoff completes),
/// and the health monitor retires it from membership instead of accusing
/// it — a planned departure is not a failure.
bool OnNodeLeave(SlashRun* run, int node) {
  if (run->failed) return true;
  if (run->recovering || run->in_teardown) return false;
  if (run->workers_running == 0) return true;  // drained: nothing to leave
  if (!run->alive[node]) return true;          // already out
  if (PartitionBlocksMembership(run, node)) return false;
  int live = 0;
  for (int n = 0; n < run->config.nodes; ++n) live += run->alive[n] ? 1 : 0;
  const int floor = std::max(run->config.reconfig->min_active, 1);
  if (live <= floor) return true;  // crashes ate the headroom: skip the leave
  ++run->attempt;
  run->recovering = true;
  run->reconfig_in_flight = true;
  run->recovery_start = run->sim->now();
  run->records_at_crash = run->records_in;
  if (run->tracer != nullptr) {
    run->tracer->Begin(run->sim->now(), run->trace_handoff, run->trace_cat,
                       node, obs::kTrackElastic);
  }
  TearDownAttempt(run);
  const uint64_t round = run->coordinator->LatestRecoverableRound(run->alive);
  run->alive[node] = false;
  // BuildAttempt's auto-retire loop retires the leaver at `round`; from
  // then on its partitions live in the new owners' blobs.
  if (run->health != nullptr) run->health->SetMembership(node, false);
  FinishMembershipChange(run, node, round);
  return true;
}

/// One poll of the recovery watchdog; re-arms itself while the attempt is
/// still stuck and the deadline has not passed.
void PollRecoveryWatchdog(SlashRun* run, int attempt, Nanos deadline_at) {
  if (run->failed || run->attempt != attempt) return;
  const bool stuck =
      run->recovering ||
      (run->workers_running > 0 && run->records_in <= run->restore_floor);
  if (!stuck) return;  // restored and progressing: the watchdog stands down
  if (run->sim->now() >= deadline_at) {
    if (run->tracer != nullptr) {
      run->tracer->InstantNamed(run->sim->now(), "recovery.watchdog_abort",
                                "health", 0, obs::kTrackHealth);
    }
    FailRun(run, Status::DeadlineExceeded(
                     "recovery round made no progress within "
                     "health.recovery_deadline"));
    return;
  }
  const Nanos interval = run->config.health.heartbeat_interval * 4;
  run->sim->ScheduleAt(std::min(run->sim->now() + interval, deadline_at),
                      [run, attempt, deadline_at] {
                        PollRecoveryWatchdog(run, attempt, deadline_at);
                      });
}

/// One poll of the whole-run deadline (health.run_deadline); re-arms while
/// the run is still in flight. Polls on a heartbeat-scale cadence rather
/// than one shot at the far-future deadline for the same reason as the
/// recovery watchdog below: the DES has no event cancellation, and a
/// single far-future event would pin a drained run's reported makespan to
/// the deadline instead of the natural drain time.
void PollRunDeadline(SlashRun* run, Nanos deadline_at) {
  if (run->failed) return;
  if (run->workers_running == 0 && !run->recovering) return;  // drained
  if (run->sim->now() >= deadline_at) {
    if (run->health != nullptr) run->health->Stop();
    if (run->reconfig_coord != nullptr) run->reconfig_coord->Stop();
    FailRun(run, Status::DeadlineExceeded(
                     "run exceeded its virtual-time deadline"));
    return;
  }
  const Nanos interval = run->config.health.heartbeat_interval * 4;
  run->sim->ScheduleAt(
      std::min(run->sim->now() + interval, deadline_at),
      [run, deadline_at] { PollRunDeadline(run, deadline_at); });
}

/// Progress watchdog (health.recovery_deadline): a recovery round that is
/// still in flight — or whose rebuilt attempt has made no input progress —
/// when the deadline expires aborts the run with kDeadlineExceeded instead
/// of spinning. Armed per attempt; a later attempt supersedes it. Polls on
/// a heartbeat-scale cadence rather than one far-future event: the DES has
/// no event cancellation, and a single shot at the full deadline would pin
/// the drain time (and thus the reported makespan) to the deadline.
void ArmRecoveryWatchdog(SlashRun* run) {
  if (run->health == nullptr) return;
  const Nanos deadline = run->config.health.recovery_deadline;
  if (deadline <= 0) return;
  const int attempt = run->attempt;
  const Nanos deadline_at = run->sim->now() + deadline;
  const Nanos interval = run->config.health.heartbeat_interval * 4;
  run->sim->ScheduleAt(std::min(run->sim->now() + interval, deadline_at),
                      [run, attempt, deadline_at] {
                        PollRecoveryWatchdog(run, attempt, deadline_at);
                      });
}

/// Builds one execution attempt: fresh node states (restored from the
/// round-`round` checkpoint blobs when round > 0), the per-(helper,
/// partition) channel mesh for the current ownership map, input lanes
/// skipped to their checkpointed offsets, replication streams, and the
/// worker/generator coroutines. Attempt 1 is the degenerate case: identity
/// ownership, round 0, nothing to restore.
void BuildAttempt(SlashRun* run, uint64_t round) {
  const ClusterConfig& config = run->config;
  const uint64_t interval = run->interval();
  const int attempt = run->attempt;
  run->attempt_channel_start = run->channels.size();

  std::vector<NodeState*> nodes(config.nodes, nullptr);
  for (int n = 0; n < config.nodes; ++n) {
    if (!run->alive[n]) continue;
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    ns->ssb = std::make_unique<state::StateBackend>(n, run->ssb_config);
    for (int p = 0; p < config.nodes; ++p) {
      if (run->owner[p] == n && p != n) ns->ssb->AddLeadership(p);
    }
    ns->trigger_wms.assign(config.nodes, core::kWatermarkMin);
    ns->worker_watermarks.assign(config.workers_per_node, core::kWatermarkMin);
    ns->worker_drained_seq.assign(config.workers_per_node, round * interval);
    ns->worker_lanes.resize(config.workers_per_node);
    ns->out.assign(config.nodes, nullptr);
    ns->activity = std::make_unique<sim::Event>(run->sim);
    // Workers blocked by the tenant quota park on their node's activity
    // event; quota releases (from any of the job's channels) must wake them.
    if (run->quota != nullptr) run->quota->AddObserver(ns->activity.get());
    ns->sink = core::ResultSink(config.collect_rows);
    ns->epoch_seq = round * interval;
    ns->snapshots_taken = round;
    for (int w = 0; w < config.workers_per_node; ++w) {
      ns->worker_cpus.push_back(std::make_unique<perf::CpuContext>(
          run->sim, config.cost_model, config.cpu_ghz));
      // Gray-node faults (kNodeSlow) stretch this node's compute too.
      ns->worker_cpus.back()->BindSpeedDial(run->fabric->speed_dial(n));
    }
    nodes[n] = ns.get();
    run->node_storage.push_back(std::move(ns));
  }
  run->nodes = nodes;

  // Restore: parse every active node's round-`round` blob and route each
  // piece to its current owner. The just-crashed node's blob restores on
  // its heir (partitions, result rows); nodes retired by earlier crashes
  // are skipped — their content lives on in their heirs' blobs.
  std::vector<uint64_t> flow_offset(run->flow_home.size(), 0);
  std::vector<int64_t> flow_last_ts(run->flow_home.size(),
                                    core::kWatermarkMin);
  if (round > 0) {
    struct SinkAccum {
      uint64_t count = 0;
      uint64_t checksum = 0;
      std::vector<core::WindowResult> rows;
    };
    std::vector<SinkAccum> sinks(config.nodes);
    for (int n = 0; n < config.nodes; ++n) {
      // A node retired by an earlier crash/quarantine is skipped only for
      // rounds past its retirement — its content lives on in its heirs'
      // blobs from then on. At or before the retirement round its own blob
      // is still the source of truth (restored onto its heir below).
      if (run->retired[n] && round > run->retire_round[n]) continue;
      // An elastic joiner has no blobs at or before its join round: its
      // partitions restore from the pre-join owners' blobs instead
      // (mirrors the coordinator's round requirement exactly).
      if (run->elastic() && round <= run->join_round[n]) continue;
      const std::vector<uint8_t>* blob = run->coordinator->BlobFor(n, round);
      SLASH_CHECK_MSG(blob != nullptr,
                      "recoverable round " << round
                                           << " missing a blob for node "
                                           << n);
      BlobReader reader(blob->data(), blob->size());
      reader.U64();  // blob round; may precede `round` (terminal snapshot)
      const uint64_t nled = reader.U64();
      for (uint64_t i = 0; i < nled; ++i) {
        const int p = int(reader.U64());
        const int64_t wm = reader.I64();
        const std::vector<uint8_t> state = reader.Bytes();
        NodeState* leader = nodes[run->owner[p]];
        SLASH_CHECK(leader != nullptr);
        SLASH_CHECK(leader->ssb->leads(p));
        SLASH_CHECK(
            leader->ssb->RestorePartition(p, state.data(), state.size()).ok());
        leader->trigger_wms[p] = wm;
        // Handoff accounting: a partition restoring onto a NEW owner is
        // state that moved across the fabric (one-sided READ volume).
        if (run->reconfig_in_flight && run->owner[p] != run->prev_owner[p]) {
          run->state_bytes_moved += state.size();
        }
      }
      const uint64_t nflows = reader.U64();
      for (uint64_t i = 0; i < nflows; ++i) {
        const uint64_t f = reader.U64();
        flow_offset[f] = reader.U64();
        flow_last_ts[f] = reader.I64();
      }
      SinkAccum& acc = sinks[run->alive[n] ? n : run->owner[n]];
      acc.count += reader.U64();
      acc.checksum += reader.U64();
      const uint64_t nrows = reader.U64();
      for (uint64_t i = 0; i < nrows; ++i) {
        core::WindowResult row;
        row.bucket = reader.I64();
        row.key = reader.U64();
        row.value = reader.I64();
        acc.rows.push_back(row);
      }
      SLASH_CHECK(reader.done());
    }
    for (int n = 0; n < config.nodes; ++n) {
      if (nodes[n] == nullptr) continue;
      nodes[n]->sink.Restore(sinks[n].count, sinks[n].checksum,
                             std::move(sinks[n].rows));
    }
  }
  if (attempt > 1) {
    uint64_t restored_records = 0;
    for (uint64_t off : flow_offset) restored_records += off;
    run->records_replayed += run->records_at_crash - restored_records;
    run->records_in = restored_records;
  }
  // Handoff accounting: a flow restoring onto a new home re-reads its
  // checkpointed prefix on the new node — those records migrated.
  if (run->reconfig_in_flight) {
    for (size_t f = 0; f < run->flow_home.size(); ++f) {
      if (run->flow_home[f] != run->prev_flow_home[f]) {
        run->records_migrated += flow_offset[f];
      }
    }
  }

  // The state-synchronization mesh: one channel per (helper, partition), so
  // each carries a strict one-delta-per-epoch FIFO towards the partition's
  // current leader.
  for (int h = 0; h < config.nodes; ++h) {
    NodeState* helper = nodes[h];
    if (helper == nullptr) continue;
    for (int p = 0; p < config.nodes; ++p) {
      const int leader = run->owner[p];
      if (leader == h) continue;
      auto ch =
          RdmaChannel::Create(run->fabric, h, leader, config.channel);
      helper->out[p] = ch.get();
      nodes[leader]->in.push_back(
          InChannel{h, p, ch.get(), round * interval, false});
      ch->AddDataObserver(nodes[leader]->activity.get());
      ch->AddCreditObserver(helper->activity.get());
      ch->SetCloseHandler([run](const Status& cause) {
        if (!run->in_teardown) FailRun(run, cause);
      });
      run->channels.push_back(std::move(ch));
    }
  }

  // Input lanes (and, in ingestion mode, the generator channels feeding
  // them — with the bounded upstream replay buffer when checkpointing).
  channel::ChannelConfig ingest_config = config.channel;
  if (run->checkpointing()) {
    ingest_config.replay_buffer_slots = config.checkpoint.replay_buffer_slots;
  }
  for (int n = 0; n < config.nodes; ++n) {
    NodeState* ns = nodes[n];
    if (ns == nullptr) continue;
    std::vector<uint64_t> flows;
    for (uint64_t f = 0; f < run->flow_home.size(); ++f) {
      if (run->flow_home[f] == n) flows.push_back(f);
    }
    for (size_t i = 0; i < flows.size(); ++i) {
      const int w = int(i) % config.workers_per_node;
      Lane lane;
      lane.flow = flows[i];
      lane.consumed = flow_offset[flows[i]];
      lane.last_ts = flow_last_ts[flows[i]];
      if (config.rdma_ingestion) {
        auto ch = RdmaChannel::Create(run->fabric, config.nodes + n, n,
                                      ingest_config);
        ch->AddDataObserver(ns->activity.get());
        ch->SetCloseHandler([run](const Status& cause) {
          if (!run->in_teardown) FailRun(run, cause);
        });
        lane.ingest = ch.get();
        run->generator_cpus.push_back(std::make_unique<perf::CpuContext>(
            run->sim, config.cost_model, config.cpu_ghz));
        run->generator_cpus.back()->BindSpeedDial(
            run->fabric->speed_dial(config.nodes + n));
        run->sim->Spawn(Generator(run, ch.get(), lane.flow, lane.consumed,
                                 run->generator_cpus.back().get(), attempt));
        run->channels.push_back(std::move(ch));
      } else {
        lane.source = run->workload->MakeFlow(int(lane.flow),
                                              run->total_workers(),
                                              config.records_per_worker,
                                              config.seed);
        // Fast-forward to the checkpoint cut: the flow is deterministic, so
        // the skip re-derives the exact position. Its cost is part of the
        // modeled recovery delay, not the data path.
        Record r;
        bool alive_source = true;
        for (uint64_t k = 0; k < lane.consumed && alive_source; ++k) {
          alive_source = lane.source->Next(&r);
        }
      }
      ns->worker_lanes[w].push_back(std::move(lane));
    }
    for (int w = 0; w < config.workers_per_node; ++w) {
      bool all_done = true;
      int64_t wm = core::kWatermarkMax;
      for (const Lane& lane : ns->worker_lanes[w]) {
        const bool lane_done = lane.last_ts == core::kWatermarkMax;
        all_done = all_done && lane_done;
        if (!lane_done) wm = std::min(wm, lane.last_ts);
      }
      ns->worker_watermarks[w] = all_done ? core::kWatermarkMax : wm;
    }
  }

  // Snapshot replication: each live node streams its blobs to the next
  // `replication_factor` live peers (cyclically) over dedicated channels.
  if (run->checkpointing()) {
    int live = 0;
    for (int n = 0; n < config.nodes; ++n) live += run->alive[n] ? 1 : 0;
    const int targets = std::min(
        std::max(config.checkpoint.replication_factor, 0), live - 1);
    for (int n = 0; n < config.nodes; ++n) {
      NodeState* ns = nodes[n];
      if (ns == nullptr) continue;
      auto rs = std::make_unique<ReplState>();
      rs->event = std::make_unique<sim::Event>(run->sim);
      ns->repl = rs.get();
      int made = 0;
      for (int i = 1; i < config.nodes && made < targets; ++i) {
        const int t = (n + i) % config.nodes;
        if (!run->alive[t]) continue;
        auto ch =
            RdmaChannel::Create(run->fabric, n, t, config.channel);
        ch->SetCloseHandler([run](const Status& cause) {
          if (!run->in_teardown) FailRun(run, cause);
        });
        run->repl_cpus.push_back(std::make_unique<perf::CpuContext>(
            run->sim, config.cost_model, config.cpu_ghz));
        perf::CpuContext* send_cpu = run->repl_cpus.back().get();
        send_cpu->BindSpeedDial(run->fabric->speed_dial(n));
        run->repl_cpus.push_back(std::make_unique<perf::CpuContext>(
            run->sim, config.cost_model, config.cpu_ghz));
        perf::CpuContext* recv_cpu = run->repl_cpus.back().get();
        recv_cpu->BindSpeedDial(run->fabric->speed_dial(t));
        run->sim->Spawn(Replicator(run, rs.get(), ch.get(), send_cpu, attempt));
        run->sim->Spawn(
            ReplicaReceiver(run, n, t, ch.get(), recv_cpu, attempt));
        run->channels.push_back(std::move(ch));
        ++made;
      }
      run->repl_storage.push_back(std::move(rs));
    }
  }

  for (int n = 0; n < config.nodes; ++n) {
    if (nodes[n] == nullptr) continue;
    for (int w = 0; w < config.workers_per_node; ++w) {
      run->sim->Spawn(Worker(run, nodes[n], w, attempt));
    }
  }

  // Nodes dead before this attempt never appear in a future barrier: their
  // partitions are snapshotted by their heirs from now on.
  for (int n = 0; n < config.nodes; ++n) {
    if (!run->alive[n] && !run->retired[n]) {
      run->retired[n] = true;
      run->retire_round[n] = round;
      run->coordinator->RetireNode(n, round);
    }
  }

  // Watchdog baseline: input progress beyond this level proves the rebuilt
  // attempt is actually running.
  run->restore_floor = run->records_in;
}

/// Labels carried by this job's instruments: empty for a single-job run
/// with no tenant (snapshots stay byte-identical to the legacy path),
/// {tenant=...} otherwise.
obs::LabelSet JobLabels(const SlashRun& run) {
  if (run.tenant.empty()) return obs::LabelSet{};
  return obs::LabelSet{{obs::kLabelTenant, run.tenant}};
}

/// Resolves the job's observability handles (histogram, tracer interns)
/// from the already-registered telemetry plane.
void ResolveObs(SlashRun* run, obs::MetricsRegistry* registry) {
  run->latency = registry->GetHistogram(obs::metric::kTransferLatencyNs);
  run->tracer = run->sim->tracer();
  if (run->tracer != nullptr) {
    run->trace_epoch = run->tracer->Intern("engine.epoch");
    run->trace_snapshot = run->tracer->Intern("checkpoint.snapshot");
    run->trace_window = run->tracer->Intern("engine.window_fire");
    run->trace_recovery = run->tracer->Intern("recovery");
    run->trace_handoff = run->tracer->Intern("elastic.handoff");
    run->trace_cat = run->tracer->Intern("slash");
  }
}

/// Per-job setup shared by Run and RunJobs: derives the SSB config, seeds
/// the recovery control plane and the identity placement, threads the
/// tenant identity and quota into the job's channel config, and builds
/// attempt 1. The fabric and obs handles must already be wired up.
void SetUpJob(SlashRun* run, obs::MetricsRegistry* registry) {
  const ClusterConfig& config = run->config;

  // Every channel of this job inherits the tenant label and the shared
  // credit quota (both no-ops for a legacy run: empty tenant, no quota).
  run->config.channel.tenant = run->tenant;
  run->config.channel.quota = run->quota.get();

  run->ssb_config = [&] {
    state::SsbConfig c;
    c.nodes = config.nodes;
    c.kind = run->query->is_join() ? state::StateKind::kAppend
                                   : state::StateKind::kAggregate;
    c.lss_capacity = config.state_lss_capacity;
    c.index_buckets = config.state_index_buckets;
    c.epoch_bytes = config.epoch_bytes;
    return c;
  }();

  run->coordinator = std::make_unique<RecoveryCoordinator>(config.nodes);
  run->coordinator->AttachMetrics(registry, JobLabels(*run));
  run->alive.assign(config.nodes, true);
  run->retired.assign(config.nodes, false);
  run->retire_round.assign(config.nodes, 0);
  run->quarantined.assign(config.nodes, false);
  run->fenced.assign(config.nodes, false);
  run->quarantine_count.assign(config.nodes, 0);
  run->owner.resize(config.nodes);
  for (int p = 0; p < config.nodes; ++p) run->owner[p] = p;
  run->flow_home.resize(size_t(run->total_workers()));
  for (int f = 0; f < run->total_workers(); ++f) {
    run->flow_home[f] = f / config.workers_per_node;
  }

  // Elastic runs start on the plan's initial subset of the provisioned
  // `nodes` maximum: the rest begin inactive (auto-retired at round 0 by
  // BuildAttempt), with their identity partitions and flows re-placed over
  // the active set. The full flow set runs regardless of membership, which
  // is why an elastic run's results equal the static run's.
  if (run->elastic()) {
    const int initial = run->config.reconfig->initial_nodes == 0
                            ? config.nodes
                            : run->config.reconfig->initial_nodes;
    for (int n = initial; n < config.nodes; ++n) run->alive[n] = false;
    run->join_round.assign(size_t(config.nodes), 0);
    run->partition_load.assign(size_t(config.nodes), 0);
    run->prev_owner = run->owner;
    run->prev_flow_home = run->flow_home;
    run->owner =
        elastic::Rebalancer::PlacePartitions(run->alive, run->partition_load);
    run->flow_home = elastic::Rebalancer::PlaceFlows(
        run->alive, config.workers_per_node, run->total_workers());
  }

  BuildAttempt(run, /*round=*/0);
}

/// Publishes everything one job tallied itself into the registry, under the
/// job's labels. Channel retries and NIC tx bytes were published live; the
/// drain time and quota denials are opt-in instruments that only register
/// for jobs that carry a tenant / quota, so legacy snapshots keep their
/// exact instrument set.
void PublishJobStats(SlashRun& run, obs::MetricsRegistry* registry,
                     RunStats* stats) {
  const obs::LabelSet labels = JobLabels(run);
  if (!run.failed) {
    // Only the surviving attempt's channels can owe credits; channels of a
    // torn-down attempt legitimately strand some mid-transfer.
    uint64_t credits = 0;
    for (size_t i = run.attempt_channel_start; i < run.channels.size(); ++i) {
      credits += run.channels[i]->credits_outstanding();
    }
    registry->GetCounter(obs::metric::kChannelCreditsOutstanding, labels)
        ->Add(credits);
  }
  if (run.injector) {
    registry->GetCounter(obs::metric::kFaultsInjected, labels)
        ->Add(run.injector->trace().size());
    registry->GetCounter(obs::metric::kFaultTraceDigest, labels)
        ->Add(run.injector->trace_digest());
  }
  registry->GetCounter(obs::metric::kRecordsIn, labels)->Add(run.records_in);
  registry->GetCounter(obs::metric::kCheckpointBytesReplicated, labels)
      ->Add(run.bytes_replicated);
  registry->GetCounter(obs::metric::kRecoveries, labels)->Add(run.recoveries);
  registry->GetCounter(obs::metric::kRecoveryNs, labels)
      ->Add(uint64_t(run.recovery_ns));
  if (run.health != nullptr) {
    registry->GetCounter(obs::metric::kHealthRejoins, labels)
        ->Add(run.rejoins);
    registry->GetCounter(obs::metric::kHealthFenceSuppressions, labels)
        ->Add(run.fence_suppressions);
  }
  registry->GetCounter(obs::metric::kRecordsReplayed, labels)
      ->Add(run.records_replayed);
  if (run.reconfig_coord != nullptr) {
    const elastic::ReconfigCoordinator& coord = *run.reconfig_coord;
    registry->GetCounter(obs::metric::kElasticReconfigs, labels)
        ->Add(coord.joins_executed() + coord.leaves_executed());
    registry->GetCounter(obs::metric::kElasticJoins, labels)
        ->Add(coord.joins_executed());
    registry->GetCounter(obs::metric::kElasticLeaves, labels)
        ->Add(coord.leaves_executed());
    registry->GetCounter(obs::metric::kElasticDeferrals, labels)
        ->Add(coord.deferrals());
    registry->GetCounter(obs::metric::kElasticHandoffNs, labels)
        ->Add(uint64_t(run.handoff_ns));
    registry->GetCounter(obs::metric::kElasticPartitionsMoved, labels)
        ->Add(run.partitions_moved);
    registry->GetCounter(obs::metric::kElasticStateBytesMoved, labels)
        ->Add(run.state_bytes_moved);
    registry->GetCounter(obs::metric::kElasticRecordsMigrated, labels)
        ->Add(run.records_migrated);
    registry->GetCounter(obs::metric::kElasticTraceDigest, labels)
        ->Add(coord.trace_digest());
    for (int p = 0; p < run.config.nodes; ++p) {
      registry
          ->GetGauge(obs::metric::kElasticPartitionLoad,
                     labels.With("partition", std::to_string(p)))
          ->Set(double(run.partition_load[size_t(p)]));
    }
  }
  obs::Counter* emitted =
      registry->GetCounter(obs::metric::kRecordsEmitted, labels);
  obs::Counter* checksum =
      registry->GetCounter(obs::metric::kResultChecksum, labels);
  for (NodeState* ns : run.nodes) {
    if (ns == nullptr) continue;
    emitted->Add(ns->sink.count());
    checksum->Add(ns->sink.checksum());
    if (run.config.collect_rows) {
      const auto& rows = ns->sink.rows();
      stats->rows.insert(stats->rows.end(), rows.begin(), rows.end());
    }
  }
  // CPU counters accumulate across every attempt — a torn-down attempt
  // still burned the cycles.
  perf::Counters* workers = registry->GetCpu(
      obs::metric::kCpu, labels.With(obs::kLabelRole, "worker"));
  for (auto& ns : run.node_storage) {
    for (auto& cpu : ns->worker_cpus) workers->Merge(cpu->counters());
  }
  if (!run.generator_cpus.empty()) {
    perf::Counters* generators = registry->GetCpu(
        obs::metric::kCpu, labels.With(obs::kLabelRole, "generator"));
    for (auto& cpu : run.generator_cpus) generators->Merge(cpu->counters());
  }
  if (!run.repl_cpus.empty()) {
    perf::Counters* replication = registry->GetCpu(
        obs::metric::kCpu, labels.With(obs::kLabelRole, "replication"));
    for (auto& cpu : run.repl_cpus) replication->Merge(cpu->counters());
  }
  if (!run.tenant.empty()) {
    registry->GetCounter(obs::metric::kJobDrainNs, labels)
        ->Add(uint64_t(run.drained_at));
  }
  if (run.quota != nullptr) {
    registry->GetCounter(obs::metric::kChannelQuotaDenials, labels)
        ->Add(run.quota->denials());
  }
}

}  // namespace

RunStats SlashEngine::Run(const JobSpec& job) {
  RunStats stats;
  stats.engine = std::string(name());

  core::QuerySpec query;
  ClusterConfig config;
  if (Status prepared = PrepareJob(job, &query, &config); !prepared.ok()) {
    stats.status = prepared;
    return stats;
  }

  sim::Simulator sim;
  SlashRun run;
  run.sim = &sim;
  run.query = &query;
  run.workload = job.sources;
  run.config = config;
  run.tenant = job.tenant;
  if (job.quota > 0) {
    run.quota = std::make_unique<channel::CreditQuota>(job.quota);
  }

  RunTelemetry telemetry(config);
  obs::MetricsRegistry* registry = telemetry.registry();

  // Ingestion mode adds one dedicated source node per executor node.
  const int fabric_nodes =
      config.rdma_ingestion ? 2 * config.nodes : config.nodes;

  // The injector must be registered before the fabric is built so the
  // fabric attaches itself as the fault target at construction. The plan is
  // validated against the fabric's node count first: a malformed plan is a
  // configuration error reported up front, not a mid-run surprise.
  if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
    const Status plan_status = config.fault_plan->Validate(fabric_nodes);
    if (!plan_status.ok()) {
      stats.status = plan_status;
      return stats;
    }
    run.injector =
        std::make_unique<sim::FaultInjector>(&sim, *config.fault_plan);
    sim.set_fault_injector(run.injector.get());
  }
  if (config.health.enabled) {
    const Status health_status = config.health.Validate();
    if (!health_status.ok()) {
      stats.status = health_status;
      return stats;
    }
  }
  if (config.reconfig != nullptr) {
    Status reconfig_status = config.reconfig->Validate(config.nodes);
    if (reconfig_status.ok() && config.fault_plan != nullptr &&
        !config.fault_plan->empty()) {
      reconfig_status =
          config.reconfig->ValidateWithFaults(*config.fault_plan,
                                              config.nodes);
    }
    if (reconfig_status.ok() && !config.checkpoint.enabled) {
      reconfig_status = Status::InvalidArgument(
          "elastic reconfiguration requires checkpointing: handoffs restore "
          "state from checkpoint blobs and replay the tail");
    }
    if (!reconfig_status.ok()) {
      stats.status = reconfig_status;
      return stats;
    }
  }

  // Register the observability plane before building the fabric so the
  // per-node NIC counters and channel handles wire themselves up.
  telemetry.Register(&sim);
  telemetry.NameNodes(fabric_nodes);
  ResolveObs(&run, registry);

  rdma::FabricConfig fabric_config;
  fabric_config.nodes = fabric_nodes;
  fabric_config.nic = config.nic;
  fabric_config.connection = config.connection;
  rdma::Fabric fabric(&sim, fabric_config);
  run.fabric = &fabric;
  fabric.SetNodeCrashHandler(
      [run_ptr = &run](int node) { OnNodeCrash(run_ptr, node); });

  SetUpJob(&run, registry);

  // The monitor is constructed after the first attempt so its probe QPs
  // number after the data plane's (QPNs are assigned in Connect order);
  // health off keeps every baseline byte-identical.
  if (config.health.enabled) {
    health::HealthMonitor::Callbacks callbacks;
    SlashRun* rp = &run;
    callbacks.on_suspect = [rp](int monitor, const std::vector<int>& s) {
      OnSuspicion(rp, monitor, s);
    };
    callbacks.on_self_fence = [rp](int node) { OnSelfFence(rp, node); };
    callbacks.on_unfence = [rp](int node) { OnUnfence(rp, node); };
    callbacks.on_liveness_resumed = [rp](int node) { OnRejoin(rp, node); };
    run.health = std::make_unique<health::HealthMonitor>(
        run.fabric, config.health, config.nodes, std::move(callbacks));
    // Provisioned-but-inactive nodes of an elastic run are not members yet:
    // they must not be probed, accused, or counted toward quorum until
    // their join executes.
    for (int n = 0; n < config.nodes; ++n) {
      if (!run.alive[n]) run.health->SetMembership(n, false);
    }
    run.health->Start();
    if (config.health.run_deadline > 0) {
      const Nanos deadline_at = config.health.run_deadline;
      sim.ScheduleAt(
          std::min(config.health.heartbeat_interval * 4, deadline_at),
          [rp, deadline_at] { PollRunDeadline(rp, deadline_at); });
    }
  }

  // The reconfiguration control plane starts after the health monitor so
  // membership callbacks find it constructed; scheduled joins/leaves and
  // the load trigger all run on the shared DES clock.
  if (config.reconfig != nullptr) {
    SlashRun* rp = &run;
    elastic::ReconfigCoordinator::Callbacks reconfig_callbacks;
    reconfig_callbacks.on_join = [rp](int n) { return OnNodeJoin(rp, n); };
    reconfig_callbacks.on_leave = [rp](int n) { return OnNodeLeave(rp, n); };
    reconfig_callbacks.sample_records = [rp] { return rp->records_in; };
    run.reconfig_coord = std::make_unique<elastic::ReconfigCoordinator>(
        &sim, config.reconfig, config.nodes, std::move(reconfig_callbacks));
    run.reconfig_coord->Start();
  }

  TimedSimRun(&sim, registry, &stats.sim_events_per_sec_wall);
  // An aborted run legitimately strands coroutines that were mid-protocol
  // when their channel died; only a *completed* run must fully drain.
  SLASH_CHECK_MSG(run.failed || sim.pending_tasks() == 0,
                  "Slash run deadlocked with " << sim.pending_tasks()
                                               << " pending tasks");

  stats.status = run.failed ? run.failure : Status::OK();
  PublishJobStats(run, registry, &stats);
  if (const auto& pool = fabric.buffer_pool();
      pool.hits() + pool.misses() > 0) {
    registry->GetGauge(obs::metric::kBufferPoolHitRate)->Set(pool.hit_rate());
  }
  telemetry.Finish(&stats);
  return stats;
}

MultiRunStats SlashEngine::RunJobs(const std::vector<JobSpec>& jobs,
                                   const ClusterConfig& cluster) {
  MultiRunStats multi;
  multi.cluster.engine = std::string(name());
  if (jobs.empty()) {
    multi.status = Status::InvalidArgument("RunJobs needs at least one job");
    multi.cluster.status = multi.status;
    return multi;
  }
  // Fault injection and health detection reason about one job's ownership
  // map and recovery rounds; neither concept is defined across tenants yet.
  if (cluster.fault_plan != nullptr && !cluster.fault_plan->empty()) {
    multi.status = Status::Unimplemented(
        "fault injection in a multi-job run (use Run for a single job)");
    multi.cluster.status = multi.status;
    return multi;
  }
  if (cluster.health.enabled) {
    multi.status = Status::Unimplemented(
        "health monitoring in a multi-job run (use Run for a single job)");
    multi.cluster.status = multi.status;
    return multi;
  }
  if (cluster.reconfig != nullptr) {
    multi.status = Status::Unimplemented(
        "elastic reconfiguration in a multi-job run (use Run for a single "
        "job)");
    multi.cluster.status = multi.status;
    return multi;
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].tenant.empty()) {
      multi.status = Status::InvalidArgument(
          "every job of a multi-job run needs a non-empty tenant");
      multi.cluster.status = multi.status;
      return multi;
    }
    for (size_t k = 0; k < j; ++k) {
      if (jobs[k].tenant == jobs[j].tenant) {
        multi.status = Status::InvalidArgument(
            "duplicate tenant '" + jobs[j].tenant + "' in a multi-job run");
        multi.cluster.status = multi.status;
        return multi;
      }
    }
  }

  // Compile every plan and overlay each job's knobs on the SHARED cluster
  // description: one fabric, one node set — job.cluster is ignored here.
  std::vector<core::QuerySpec> queries(jobs.size());
  std::vector<ClusterConfig> configs(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    JobSpec on_cluster = jobs[j];
    on_cluster.cluster = cluster;
    if (Status prepared = PrepareJob(on_cluster, &queries[j], &configs[j]);
        !prepared.ok()) {
      multi.status = prepared;
      multi.cluster.status = multi.status;
      return multi;
    }
  }

  sim::Simulator sim;
  RunTelemetry telemetry(cluster);
  obs::MetricsRegistry* registry = telemetry.registry();

  // One shared set of source nodes as soon as any job ingests over RDMA.
  bool any_ingestion = false;
  for (const ClusterConfig& c : configs) any_ingestion |= c.rdma_ingestion;
  const int fabric_nodes =
      any_ingestion ? 2 * cluster.nodes : cluster.nodes;

  telemetry.Register(&sim);
  telemetry.NameNodes(fabric_nodes);

  // Stable addresses: coroutines and close handlers capture SlashRun*.
  std::vector<std::unique_ptr<SlashRun>> runs;
  runs.reserve(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    auto run = std::make_unique<SlashRun>();
    run->sim = &sim;
    run->query = &queries[j];
    run->workload = jobs[j].sources;
    run->config = configs[j];
    run->tenant = jobs[j].tenant;
    if (jobs[j].quota > 0) {
      run->quota = std::make_unique<channel::CreditQuota>(jobs[j].quota);
    }
    // Dedicated trace tracks per job, named after the tenant, so one trace
    // file shows every job's epochs and recovery side by side.
    run->track_engine = obs::kTrackElastic + 1 + int(2 * j);
    run->track_recovery = obs::kTrackElastic + 2 + int(2 * j);
    if (obs::Tracer* tracer = telemetry.tracer(); tracer->enabled()) {
      for (int n = 0; n < fabric_nodes; ++n) {
        tracer->SetTrackName(n, run->track_engine,
                             "engine/" + jobs[j].tenant);
        tracer->SetTrackName(n, run->track_recovery,
                             "recovery/" + jobs[j].tenant);
      }
    }
    ResolveObs(run.get(), registry);
    runs.push_back(std::move(run));
  }

  rdma::FabricConfig fabric_config;
  fabric_config.nodes = fabric_nodes;
  fabric_config.nic = cluster.nic;
  fabric_config.connection = cluster.connection;
  rdma::Fabric fabric(&sim, fabric_config);
  // No injector is installed (validated above), so this cannot fire today;
  // it still fails every job loudly rather than hanging if it ever does.
  fabric.SetNodeCrashHandler([&runs](int) {
    for (auto& r : runs) {
      if (!r->failed) {
        FailRun(r.get(),
                Status::Unimplemented("node crash in a multi-job run"));
      }
    }
  });

  for (auto& run : runs) {
    run->fabric = &fabric;
    SetUpJob(run.get(), registry);
  }

  // One DES drives every job's coroutines: fairness is the timestamp order
  // of the shared event queue, contention is the shared NIC model.
  TimedSimRun(&sim, registry, &multi.cluster.sim_events_per_sec_wall);
  bool all_ok = true;
  for (auto& run : runs) all_ok = all_ok && !run->failed;
  SLASH_CHECK_MSG(!all_ok || sim.pending_tasks() == 0,
                  "multi-job run deadlocked with " << sim.pending_tasks()
                                                   << " pending tasks");

  multi.jobs.resize(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    SlashRun& run = *runs[j];
    RunStats& stats = multi.jobs[j];
    stats.engine = std::string(name());
    stats.status = run.failed ? run.failure : Status::OK();
    if (!stats.ok() && multi.status.ok()) multi.status = stats.status;
    PublishJobStats(run, registry, &stats);
  }
  if (const auto& pool = fabric.buffer_pool();
      pool.hits() + pool.misses() > 0) {
    registry->GetGauge(obs::metric::kBufferPoolHitRate)->Set(pool.hit_rate());
  }
  multi.cluster.status = multi.status;
  telemetry.Finish(&multi.cluster);
  // Per-job views: the cluster snapshot filtered to each tenant's label
  // (shared, unlabeled instruments — makespan, NIC bytes, DES counters —
  // are retained, so the RunStats accessors work unchanged).
  for (size_t j = 0; j < jobs.size(); ++j) {
    multi.jobs[j].metrics =
        multi.cluster.metrics.SelectLabel(obs::kLabelTenant, jobs[j].tenant);
    multi.jobs[j].sim_events_per_sec_wall =
        multi.cluster.sim_events_per_sec_wall;
  }
  return multi;
}

}  // namespace slash::engines
