#include "engines/slash_engine.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/record.h"
#include "core/vector_clock.h"
#include "engines/trigger.h"
#include "state/state_backend.h"

namespace slash::engines {

namespace {

using channel::InboundBuffer;
using channel::RdmaChannel;
using channel::SlotRef;
using core::Record;
using perf::Op;

struct NodeState {
  int node = 0;
  std::unique_ptr<state::StateBackend> ssb;
  std::vector<std::unique_ptr<perf::CpuContext>> worker_cpus;
  std::vector<int64_t> worker_watermarks;
  int finished_workers = 0;
  // Epoch coordination: any worker that observes the byte threshold bumps
  // `epoch_seq`; every worker then drains *its assigned partitions* for
  // that epoch (parallel drain). `epoch_low_wm` is the node low watermark
  // frozen at the bump.
  uint64_t epoch_seq = 0;
  int64_t epoch_low_wm = core::kWatermarkMin;
  bool final_bumped = false;  // the end-of-stream epoch has been announced
  core::VectorClock vclock;
  int64_t last_trigger_wm = core::kWatermarkMin;
  core::ResultSink sink;
  // out[p]: channel towards partition p's leader; in[h]: from helper h.
  std::vector<RdmaChannel*> out;
  std::vector<RdmaChannel*> in;
  std::vector<RdmaChannel*> ingest;  // per worker (rdma_ingestion only)
  std::vector<bool> helper_final;              // per helper node
  int finals_received = 0;
  std::vector<int> all_helpers;                // every h != node
  // Notified on any inbound arrival or credit return at this node; the
  // epoch-drain loop parks here so it can keep pumping inbound channels
  // (releasing their credits) while waiting for its own send credits —
  // without this, two nodes draining towards each other can deadlock.
  std::unique_ptr<sim::Event> activity;

  explicit NodeState(int nodes) : vclock(nodes) {}

  int64_t NodeLowWatermark() const {
    return *std::min_element(worker_watermarks.begin(),
                             worker_watermarks.end());
  }
};

struct SlashRun {
  const core::QuerySpec* query;
  const workloads::Workload* workload;
  ClusterConfig config;
  sim::Simulator sim;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<rdma::Fabric> fabric;
  std::vector<std::unique_ptr<RdmaChannel>> channels;
  std::vector<std::unique_ptr<NodeState>> nodes;
  std::vector<std::unique_ptr<perf::CpuContext>> generator_cpus;
  uint64_t records_in = 0;
  LatencyHistogram latency;
  bool failed = false;
  Status failure;

  int total_workers() const {
    return config.nodes * config.workers_per_node;
  }
};

/// Aborts the run cleanly after a permanent fault: records the cause and
/// wakes every parked coroutine so it can observe `failed` and unwind
/// (instead of deadlocking on a channel that will never move again).
void FailRun(SlashRun* run, const Status& cause) {
  if (run->failed) return;
  run->failed = true;
  run->failure = cause;
  for (auto& ns : run->nodes) ns->activity->Notify();
  for (auto& ch : run->channels) {
    ch->credit_event().Notify();
    ch->data_event().Notify();
  }
}

/// Emits and retires every primary-partition bucket whose trigger
/// watermark passed min(V).
void TryTrigger(SlashRun* run, NodeState* ns, perf::CpuContext* cpu) {
  TriggerWindows(*run->query, ns->vclock.Min(), ns->ssb->primary(), &ns->sink,
                 cpu, &ns->last_trigger_wm);
}

/// Polls the node's inbound channels and merges delta chunks into the
/// primary partition. Every chunk is entry-aligned and independently
/// mergeable, so *any* worker can take any chunk — merge work spreads
/// across all worker cores, interleaved with query processing
/// (Sec. 7.2.1: "Slash interleaves reception and merging of delta changes
/// with query processing"). Returns true if anything was consumed.
///
/// Watermark rule: only a delta's last chunk (user_tag == 1) carries the
/// helper's low watermark; earlier chunks must not advance the vector
/// clock or a window could trigger before all its state arrived.
bool PollAndMerge(SlashRun* run, NodeState* ns, perf::CpuContext* cpu) {
  bool progressed = false;
  for (int h : ns->all_helpers) {
    InboundBuffer buffer;
    while (ns->in[h]->TryPoll(&buffer, cpu)) {
      progressed = true;
      run->latency.Record(run->sim.now() - buffer.send_time);
      state::DeltaEnvelope envelope;
      SLASH_CHECK(ns->ssb
                      ->MergeIntoPrimary(buffer.payload, buffer.payload_len,
                                         &envelope)
                      .ok());
      cpu->Charge(Op::kCrdtMergePerPair, double(envelope.entry_count));
      const bool last_chunk = buffer.user_tag == 1;
      const int64_t watermark = buffer.watermark;
      SLASH_CHECK(ns->in[h]->Release(buffer, cpu).ok());
      if (last_chunk) {
        ns->vclock.Update(h, watermark);
        if (watermark == core::kWatermarkMax && !ns->helper_final[h]) {
          ns->helper_final[h] = true;
          ++ns->finals_received;
        }
      }
    }
  }
  return progressed;
}

/// The helper partitions worker `w` is responsible for draining (and whose
/// channels it effectively owns as a producer).
std::vector<int> AssignedPartitions(const SlashRun& run, int node, int w) {
  std::vector<int> partitions;
  for (int p = 0; p < run.config.nodes; ++p) {
    if (p == node) continue;
    const int slot = p < node ? p : p - 1;  // dense index
    if (slot % run.config.workers_per_node == w) partitions.push_back(p);
  }
  return partitions;
}

/// A serialized delta queued for transmission on one channel: the drain is
/// *non-blocking* — a worker serializes its fragments the moment it
/// observes a new epoch (freeing them for fresh RMWs immediately) and then
/// ships the chunks opportunistically between processing batches, never
/// stalling on credits. This is the full compute/RDMA interleaving of
/// Sec. 5.3: an out-of-credit channel parks only the *send*, not the core.
struct PendingDelta {
  int partition = 0;
  state::DeltaEnvelope envelope;
  std::vector<uint8_t> bytes;  // entries only (envelope re-written per chunk)
  std::vector<state::Partition::DeltaChunk> chunks;
  size_t next_chunk = 0;
  int64_t low_wm = 0;
};

/// Serializes this worker's share of the fragments for the current epoch
/// and appends the resulting deltas to its send queue (protocol steps 1-2
/// and the sender half of step 4).
void SerializeShare(SlashRun* run, NodeState* ns,
                    const std::vector<int>& partitions, int64_t low_wm,
                    std::deque<PendingDelta>* queue, perf::CpuContext* cpu) {
  for (int p : partitions) {
    PendingDelta delta;
    delta.partition = p;
    delta.low_wm = low_wm;
    std::vector<uint8_t> scratch;
    delta.envelope = ns->ssb->DrainFragment(p, low_wm, &scratch);
    cpu->Charge(Op::kEpochScanPerByte, double(scratch.size()));
    delta.bytes.assign(scratch.begin() + sizeof(state::DeltaEnvelope),
                       scratch.end());
    delta.chunks = state::Partition::SplitDelta(
        delta.bytes.data(), delta.bytes.size(),
        ns->out[p]->payload_capacity() - sizeof(state::DeltaEnvelope));
    queue->push_back(std::move(delta));
  }
}

/// Ships as many queued delta chunks as credits currently allow (protocol
/// step 3). Never blocks; returns true if anything was sent.
bool PumpSendQueue(SlashRun* run, NodeState* ns,
                   std::deque<PendingDelta>* queue, perf::CpuContext* cpu) {
  bool sent = false;
  while (!queue->empty()) {
    PendingDelta& delta = queue->front();
    RdmaChannel* ch = ns->out[delta.partition];
    while (delta.next_chunk < delta.chunks.size()) {
      SlotRef slot;
      if (!ch->TryAcquire(&slot, cpu)) return sent;  // out of credit: later
      const auto& chunk = delta.chunks[delta.next_chunk];
      state::DeltaEnvelope chunk_envelope = delta.envelope;
      chunk_envelope.entry_count = chunk.entries;
      std::memcpy(slot.payload, &chunk_envelope, sizeof(chunk_envelope));
      std::memcpy(slot.payload + sizeof(chunk_envelope),
                  delta.bytes.data() + chunk.offset, chunk.length);
      cpu->ChargeBytes(Op::kBufferCopyPerByte,
                       sizeof(chunk_envelope) + chunk.length);
      const bool last = delta.next_chunk + 1 == delta.chunks.size();
      const Status post = ch->Post(slot, sizeof(chunk_envelope) + chunk.length,
                                   /*user_tag=*/last ? 1 : 0,
                                   /*watermark=*/last ? delta.low_wm
                                                      : core::kWatermarkMin,
                                   cpu);
      if (!post.ok()) {
        // Only a broken channel rejects an in-order post; the close handler
        // has already failed the run — stop pumping and let the worker exit.
        SLASH_CHECK(ch->broken());
        return sent;
      }
      sent = true;
      ++delta.next_chunk;
    }
    queue->pop_front();
  }
  return sent;
}

/// Bumps the node epoch (step 1): freezes the low watermark and advances
/// the per-partition epoch counters; workers drain their shares when they
/// observe the new sequence number.
void BumpEpoch(SlashRun* run, NodeState* ns) {
  ns->ssb->BeginEpoch();
  ++ns->epoch_seq;
  ns->epoch_low_wm = ns->NodeLowWatermark();
  ns->vclock.Update(ns->node, ns->epoch_low_wm);
  ns->activity->Notify();  // wake idle workers to drain their shares
}

/// A source-node generator (rdma_ingestion mode): streams one flow's wire
/// records into its executor worker's ingest channel at line rate, then
/// posts a final marker. This is the paper's Fig. 1 ingestion path — the
/// executor receives data through the same credit-controlled RDMA channels
/// it uses for state exchange.
sim::Task Generator(SlashRun* run, RdmaChannel* ch, int flow,
                    perf::CpuContext* cpu) {
  auto source = run->workload->MakeFlow(flow, run->total_workers(),
                                        run->config.records_per_worker,
                                        run->config.seed);
  Record r;
  bool more = source->Next(&r);
  int64_t last_ts = core::kWatermarkMin;
  while (more) {
    SlotRef slot;
    while (!ch->TryAcquire(&slot, cpu)) {
      if (run->failed || ch->broken()) co_return;
      const Nanos wait_start = run->sim.now();
      co_await ch->credit_event().Wait();
      cpu->ChargeWait(run->sim.now() - wait_start);
    }
    core::RecordWriter writer(slot.payload, ch->payload_capacity());
    do {
      const uint16_t wire_size = run->workload->wire_size(r.stream_id);
      cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
      cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
      if (!writer.Append(r, wire_size)) break;
      last_ts = r.timestamp;
      more = source->Next(&r);
    } while (more);
    if (!ch->Post(slot, writer.bytes_used(), /*user_tag=*/0,
                  /*watermark=*/last_ts, cpu)
             .ok()) {
      SLASH_CHECK(ch->broken());
      co_return;
    }
    co_await cpu->Sync();
  }
  SlotRef final_slot;
  while (!ch->TryAcquire(&final_slot, cpu)) {
    if (run->failed || ch->broken()) co_return;
    const Nanos wait_start = run->sim.now();
    co_await ch->credit_event().Wait();
    cpu->ChargeWait(run->sim.now() - wait_start);
  }
  if (!ch->Post(final_slot, 0, /*user_tag=*/1,
                /*watermark=*/core::kWatermarkMax, cpu)
           .ok()) {
    SLASH_CHECK(ch->broken());
    co_return;
  }
  co_await cpu->Sync();
}

/// One worker coroutine: one physical data flow, processed push-based,
/// interleaved with merging the deltas of its assigned helper channels —
/// the compute/RDMA coroutine interleaving of Sec. 5.3.
sim::Task Worker(SlashRun* run, NodeState* ns, int w) {
  perf::CpuContext* cpu = ns->worker_cpus[w].get();
  core::RecordPipeline pipeline(run->query, cpu, run->config.execution);
  const int flow = ns->node * run->config.workers_per_node + w;
  std::unique_ptr<core::RecordSource> source;
  if (!run->config.rdma_ingestion) {
    source = run->workload->MakeFlow(flow, run->total_workers(),
                                     run->config.records_per_worker,
                                     run->config.seed);
  }
  const std::vector<int> my_partitions =
      AssignedPartitions(*run, ns->node, w);
  uint64_t drained_seq = 0;
  std::deque<PendingDelta> send_queue;
  uint8_t wire_buf[512];
  Record r;
  bool more = true;

  auto channels_done = [&] {
    return ns->finals_received == int(ns->all_helpers.size());
  };

  // A worker may only exit once the node's end-of-stream epoch has been
  // announced and it has shipped its share of it — otherwise its
  // partitions' final deltas (and watermarks) would never reach their
  // leaders. A failed run releases workers immediately: their channels are
  // dead, so the exit conditions can never be met.
  while (!run->failed &&
         (more || !channels_done() || drained_seq < ns->epoch_seq ||
          !ns->final_bumped || !send_queue.empty())) {
    // Serialize this worker's share of any newly announced epoch (frees
    // the fragments for fresh RMWs immediately) and ship whatever chunks
    // current credits allow — without ever stalling the core.
    if (drained_seq < ns->epoch_seq) {
      drained_seq = ns->epoch_seq;
      SerializeShare(run, ns, my_partitions, ns->epoch_low_wm, &send_queue,
                     cpu);
      TryTrigger(run, ns, cpu);
    }
    const bool sent = PumpSendQueue(run, ns, &send_queue, cpu);
    // RDMA coroutine work: merge inbound delta chunks (cheap when none
    // pending); any worker takes any chunk.
    const bool merged = PollAndMerge(run, ns, cpu);
    if (merged) TryTrigger(run, ns, cpu);

    bool input_progress = false;
    if (more) {
      uint64_t batch_records = 0;
      uint64_t batch_bytes = 0;
      int64_t last_ts = ns->worker_watermarks[w];
      InboundBuffer ingest_buffer;
      std::unique_ptr<core::RecordReader> ingest_reader;
      if (run->config.rdma_ingestion) {
        // Ingest one RDMA-delivered buffer, if any has landed.
        if (!ns->ingest[w]->TryPoll(&ingest_buffer, cpu)) {
          ingest_reader = nullptr;
        } else if (ingest_buffer.user_tag == 1) {
          more = false;
          SLASH_CHECK(ns->ingest[w]->Release(ingest_buffer, cpu).ok());
        } else {
          ingest_reader = std::make_unique<core::RecordReader>(
              ingest_buffer.payload, ingest_buffer.payload_len);
        }
      }
      auto next_record = [&]() -> bool {
        if (!run->config.rdma_ingestion) {
          more = source->Next(&r);
          return more;
        }
        // Ingestion mode: the buffer is the batch; `more` only flips when
        // the generator's final marker arrives.
        return ingest_reader != nullptr && ingest_reader->Next(&r);
      };
      while ((run->config.rdma_ingestion ||
              batch_records < run->config.source_batch) &&
             next_record()) {
        ++batch_records;
        const uint16_t wire_size = run->workload->wire_size(r.stream_id);
        batch_bytes += wire_size;
        if (!run->config.rdma_ingestion) {
          cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
        }
        last_ts = r.timestamp;
        if (!pipeline.Process(&r)) continue;

        pipeline.ChargeStatefulPrologue();
        const int64_t bucket = run->query->window.BucketOf(r.timestamp);
        cpu->Charge(Op::kIndexProbe);
        if (run->query->is_join()) {
          // Holistic state: append the full wire record (state realism).
          SLASH_CHECK_LE(size_t{wire_size}, sizeof(wire_buf));
          SerializeWireRecord(r, wire_size, wire_buf);
          cpu->Charge(Op::kStateAppend);
          cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
          ns->ssb->Append(r.key, bucket, r.stream_id, wire_buf, wire_size);
        } else {
          cpu->Charge(Op::kStateRmw);
          ns->ssb->UpdateAggregate(r.key, bucket, r.value);
        }
      }
      if (run->config.rdma_ingestion && ingest_reader != nullptr) {
        SLASH_CHECK(ns->ingest[w]->Release(ingest_buffer, cpu).ok());
      }
      input_progress = batch_records > 0 || !more;
      run->records_in += batch_records;
      cpu->CountRecords(batch_records);
      ns->worker_watermarks[w] = last_ts;
      ns->ssb->AccountProcessedBytes(batch_bytes);
      co_await cpu->Sync();
      if (more && ns->ssb->EpochDue()) {
        BumpEpoch(run, ns);
      }
      if (!more) {
        ns->worker_watermarks[w] = core::kWatermarkMax;
        if (++ns->finished_workers == run->config.workers_per_node) {
          // Ahead-of-time epoch termination at end of stream: the final
          // drain carries watermark kWatermarkMax.
          ns->final_bumped = true;
          BumpEpoch(run, ns);
        }
      }
    }
    if (!merged && !sent && !input_progress && !run->failed &&
        drained_seq == ns->epoch_seq &&
        (more || !channels_done() || !ns->final_bumped ||
         !send_queue.empty())) {
      // Nothing mergeable, nothing sendable (blocked on credits), no input
      // left, but not exit-ready either: park until credits return, data
      // arrives, or a new epoch is announced. The exit-readiness check in
      // the condition guarantees we never park past the last event.
      const Nanos wait_start = run->sim.now();
      co_await ns->activity->Wait();
      cpu->ChargeWait(run->sim.now() - wait_start);
    } else {
      co_await cpu->Sync();
    }
  }
  // Final safety trigger: whichever worker observes global completion last
  // emits the remaining windows (idempotent via last_trigger_wm). Skipped
  // on an aborted run — partial windows would pollute the result digest.
  if (!run->failed) TryTrigger(run, ns, cpu);
  co_await cpu->Sync();
}

}  // namespace

RunStats SlashEngine::Run(const core::QuerySpec& query,
                          const workloads::Workload& workload,
                          const ClusterConfig& config) {
  SlashRun run;
  run.query = &query;
  run.workload = &workload;
  run.config = config;

  // The injector must be registered before the fabric is built so the
  // fabric attaches itself as the fault target at construction.
  if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
    run.injector =
        std::make_unique<sim::FaultInjector>(&run.sim, *config.fault_plan);
    run.sim.set_fault_injector(run.injector.get());
  }

  rdma::FabricConfig fabric_config;
  // Ingestion mode adds one dedicated source node per executor node.
  fabric_config.nodes = config.rdma_ingestion ? 2 * config.nodes
                                              : config.nodes;
  fabric_config.nic = config.nic;
  run.fabric = std::make_unique<rdma::Fabric>(&run.sim, fabric_config);

  const state::SsbConfig ssb_config = [&] {
    state::SsbConfig c;
    c.nodes = config.nodes;
    c.kind = query.is_join() ? state::StateKind::kAppend
                             : state::StateKind::kAggregate;
    c.lss_capacity = config.state_lss_capacity;
    c.index_buckets = config.state_index_buckets;
    c.epoch_bytes = config.epoch_bytes;
    return c;
  }();

  for (int node = 0; node < config.nodes; ++node) {
    auto ns = std::make_unique<NodeState>(config.nodes);
    ns->node = node;
    ns->ssb = std::make_unique<state::StateBackend>(node, ssb_config);
    ns->worker_watermarks.assign(config.workers_per_node, core::kWatermarkMin);
    ns->out.assign(config.nodes, nullptr);
    ns->in.assign(config.nodes, nullptr);
    ns->helper_final.assign(config.nodes, false);
    ns->activity = std::make_unique<sim::Event>(&run.sim);
    for (int h = 0; h < config.nodes; ++h) {
      if (h != node) ns->all_helpers.push_back(h);
    }
    ns->sink = core::ResultSink(config.collect_rows);
    for (int w = 0; w < config.workers_per_node; ++w) {
      ns->worker_cpus.push_back(std::make_unique<perf::CpuContext>(
          &run.sim, config.cost_model, config.cpu_ghz));
    }
    run.nodes.push_back(std::move(ns));
  }

  // The n^2 mesh of state-synchronization channels (Sec. 7.2.2 setup).
  for (int helper = 0; helper < config.nodes; ++helper) {
    for (int leader = 0; leader < config.nodes; ++leader) {
      if (helper == leader) continue;
      auto ch =
          RdmaChannel::Create(run.fabric.get(), helper, leader, config.channel);
      run.nodes[helper]->out[leader] = ch.get();
      run.nodes[leader]->in[helper] = ch.get();
      ch->AddDataObserver(run.nodes[leader]->activity.get());
      ch->AddCreditObserver(run.nodes[helper]->activity.get());
      ch->SetCloseHandler(
          [run_ptr = &run](const Status& cause) { FailRun(run_ptr, cause); });
      run.channels.push_back(std::move(ch));
    }
  }

  // Ingestion channels: generator node (config.nodes + n) feeds each of
  // node n's workers through a dedicated RDMA channel (Fig. 1).
  if (config.rdma_ingestion) {
    for (int node = 0; node < config.nodes; ++node) {
      NodeState* ns = run.nodes[node].get();
      for (int w = 0; w < config.workers_per_node; ++w) {
        auto ch = RdmaChannel::Create(run.fabric.get(), config.nodes + node,
                                      node, config.channel);
        ch->AddDataObserver(ns->activity.get());
        ch->SetCloseHandler(
            [run_ptr = &run](const Status& cause) { FailRun(run_ptr, cause); });
        ns->ingest.push_back(ch.get());
        run.generator_cpus.push_back(std::make_unique<perf::CpuContext>(
            &run.sim, config.cost_model, config.cpu_ghz));
        run.sim.Spawn(Generator(&run, ch.get(),
                                node * config.workers_per_node + w,
                                run.generator_cpus.back().get()));
        run.channels.push_back(std::move(ch));
      }
    }
  }

  for (auto& ns : run.nodes) {
    for (int w = 0; w < config.workers_per_node; ++w) {
      run.sim.Spawn(Worker(&run, ns.get(), w));
    }
  }

  RunStats stats;
  stats.engine = std::string(name());
  stats.makespan = run.sim.Run();
  // An aborted run legitimately strands coroutines that were mid-protocol
  // when their channel died; only a *completed* run must fully drain.
  SLASH_CHECK_MSG(run.failed || run.sim.pending_tasks() == 0,
                  "Slash run deadlocked with " << run.sim.pending_tasks()
                                               << " pending tasks");

  stats.status = run.failed ? run.failure : Status::OK();
  for (auto& ch : run.channels) {
    stats.channel_retries += ch->retries();
    if (!run.failed) stats.credits_outstanding += ch->credits_outstanding();
  }
  if (run.injector) {
    stats.faults_injected = run.injector->trace().size();
    stats.fault_trace_digest = run.injector->trace_digest();
  }
  stats.records_in = run.records_in;
  stats.network_bytes = run.fabric->total_tx_bytes();
  stats.buffer_latency = run.latency;
  perf::Counters workers;
  for (auto& ns : run.nodes) {
    stats.records_emitted += ns->sink.count();
    stats.result_checksum += ns->sink.checksum();
    if (config.collect_rows) {
      const auto& rows = ns->sink.rows();
      stats.rows.insert(stats.rows.end(), rows.begin(), rows.end());
    }
    for (auto& cpu : ns->worker_cpus) workers.Merge(cpu->counters());
  }
  stats.role_counters["worker"] = workers;
  if (!run.generator_cpus.empty()) {
    perf::Counters generators;
    for (auto& cpu : run.generator_cpus) generators.Merge(cpu->counters());
    stats.role_counters["generator"] = generators;
  }
  return stats;
}

}  // namespace slash::engines
