// Shared window-trigger logic used by every engine's leader/receiver side.
//
// Given a watermark that the engine's progress-tracking mechanism proved
// safe (Slash: min of the vector clock; re-partitioning engines: min over
// input-channel watermarks; LightSaber: min over worker watermarks), emits
// every state bucket whose trigger watermark has passed, then retires the
// bucket. Centralizing this guarantees all SUTs produce results under
// identical trigger semantics, so benchmark differences come only from the
// execution strategy.
#ifndef SLASH_ENGINES_TRIGGER_H_
#define SLASH_ENGINES_TRIGGER_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "core/join.h"
#include "core/query.h"
#include "core/record.h"
#include "core/result_sink.h"
#include "core/sliding.h"
#include "core/vector_clock.h"
#include "perf/cost_model.h"
#include "state/partition.h"

namespace slash::engines {

/// Largest bucket id whose trigger watermark is <= `wm`; INT64_MIN when no
/// bucket may trigger yet.
inline int64_t TriggerableBucket(const core::WindowSpec& window, int64_t wm) {
  if (wm == core::kWatermarkMax) return std::numeric_limits<int64_t>::max();
  const int64_t extra =
      window.type == core::WindowSpec::Type::kSession ? window.gap : 0;
  // largest b with (b+1)*width + extra <= wm. Compare as wm < width + extra
  // (width, extra are config-scale): wm - extra underflows for the initial
  // kWatermarkMin watermark.
  const int64_t width = window.BucketWidth();
  if (wm < width + extra) return std::numeric_limits<int64_t>::min();
  return (wm - extra) / width - 1;
}

/// Parses a stored wire record back into its join digest.
inline core::JoinElement ParseJoinElement(const uint8_t* payload) {
  core::WireRecordHeader header;
  std::memcpy(&header, payload, sizeof(header));
  return core::JoinElement{header.timestamp, header.stream_id};
}

/// Emits every bucket of `partition` triggerable at watermark `wm` and
/// tombstones it. `last_trigger_wm` suppresses redundant scans. All CPU
/// costs are charged to `cpu`.
inline void TriggerWindows(const core::QuerySpec& query, int64_t wm,
                           state::Partition* partition,
                           core::ResultSink* sink, perf::CpuContext* cpu,
                           int64_t* last_trigger_wm) {
  if (wm <= *last_trigger_wm || wm == core::kWatermarkMin) return;
  const int64_t prev_threshold =
      TriggerableBucket(query.window, *last_trigger_wm);
  *last_trigger_wm = wm;
  const int64_t threshold = TriggerableBucket(query.window, wm);
  if (threshold == std::numeric_limits<int64_t>::min()) return;

  if (query.window.type == core::WindowSpec::Type::kSliding) {
    // Sliding windows: collect the populated slice aggregates and emit
    // every newly complete window from them (general slicing; the slice
    // state is shared by all windows covering it).
    std::vector<core::SliceAggregate> slices;
    partition->ForEachLive(
        [&](const state::EntryHeader& header, const uint8_t* value) {
          if (header.bucket > threshold) return;
          core::SliceAggregate s;
          s.slice = header.bucket;
          s.key = header.key;
          std::memcpy(&s.state, value, sizeof(s.state));
          slices.push_back(s);
        });
    const uint64_t merges = core::EmitSlidingWindows(
        query.window, query.agg, slices, prev_threshold, threshold, sink);
    cpu->Charge(perf::Op::kCrdtMergePerPair, double(merges));
    cpu->Charge(perf::Op::kWindowTriggerPerKey, double(slices.size()));
    // A slice retires once its last covering window has been emitted.
    partition->TombstoneBucketsUpTo(
        core::RetirableSlice(query.window, threshold));
    return;
  }

  if (query.is_join()) {
    // Lazy holistic evaluation on the merged state: group appended records
    // by (bucket, key), then count pairwise combinations per window.
    std::map<std::pair<int64_t, uint64_t>, std::vector<core::JoinElement>>
        groups;
    partition->ForEachLive(
        [&](const state::EntryHeader& header, const uint8_t* value) {
          if (header.bucket > threshold) return;
          groups[{header.bucket, header.key}].push_back(
              ParseJoinElement(value));
        });
    for (auto& [group, elements] : groups) {
      cpu->Charge(perf::Op::kWindowTriggerPerKey);
      cpu->Charge(perf::Op::kCrdtMergePerPair, double(elements.size()));
      const uint64_t pairs = core::CountJoinPairs(
          query.window, query.left_stream, query.right_stream, &elements);
      if (pairs > 0) sink->Emit(group.first, group.second, int64_t(pairs));
    }
  } else {
    partition->ForEachLive(
        [&](const state::EntryHeader& header, const uint8_t* value) {
          if (header.bucket > threshold) return;
          cpu->Charge(perf::Op::kWindowTriggerPerKey);
          state::AggState s;
          std::memcpy(&s, value, sizeof(s));
          sink->Emit(header.bucket, header.key, s.Extract(query.agg));
        });
  }
  partition->TombstoneBucketsUpTo(threshold);
}

/// Serializes one record into its wire form (header + opaque padding).
inline void SerializeWireRecord(const core::Record& r, uint16_t wire_size,
                                uint8_t* buf) {
  core::WireRecordHeader header;
  header.timestamp = r.timestamp;
  header.key = r.key;
  header.value = r.value;
  header.stream_id = r.stream_id;
  header.wire_size = wire_size;
  header.reserved = 0;
  std::memset(buf, 0, wire_size);
  std::memcpy(buf, &header, sizeof(header));
}

}  // namespace slash::engines

#endif  // SLASH_ENGINES_TRIGGER_H_
