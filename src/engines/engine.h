// The common engine interface: every System under Test (SUT) of the
// paper's evaluation implements it over the same substrates.
//
//   * SlashEngine       — the paper's contribution (native RDMA integration)
//   * UpParEngine       — "RDMA UpPar": lightweight integration; hash
//                          re-partitioning over RDMA channels
//   * FlinkLikeEngine   — plug-and-play integration; queue-based
//                          re-partitioning over sockets/IPoIB, managed-
//                          runtime overheads
//   * LightSaberEngine  — scale-up single-node late merge (COST yardstick)
//
// An Engine::Run executes one query over one workload on a simulated
// cluster and reports throughput (records per second of virtual time),
// result digests for correctness checks, network volume, per-role
// top-down counters, and buffer-latency histograms.
#ifndef SLASH_ENGINES_ENGINE_H_
#define SLASH_ENGINES_ENGINE_H_

#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "channel/rdma_channel.h"
#include "common/stats.h"
#include "health/health.h"
#include "common/status.h"
#include "common/units.h"
#include "core/pipeline.h"
#include "core/query.h"
#include "core/result_sink.h"
#include "engines/job.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/cost_model.h"
#include "rdma/fabric.h"
#include "rdma/socket_transport.h"
#include "sim/fault.h"
#include "workloads/workload.h"

namespace slash::engines {

// CheckpointConfig, ClusterConfig, JobConfig, and JobSpec live in
// engines/job.h (the job model); this header re-exports them via the
// include above.

/// Outcome of one engine run: a thin, stable view over the run's metrics
/// registry. Engines publish every tally as a named instrument (the
/// catalog in obs::metric; full mapping in DESIGN.md §8) and hand the final
/// snapshot over here; the accessors below are the stable read API. An
/// absent instrument reads as zero, so partial/aborted runs behave as the
/// old zeroed struct fields did.
struct RunStats {
  std::string engine;

  /// OK for a completed run; the terminal error when a permanent fault
  /// (e.g. an unrecovered QP past the retry budget) aborted it. An aborted
  /// run still reports whatever partial stats it accumulated.
  Status status;
  bool ok() const { return status.ok(); }

  std::vector<core::WindowResult> rows;  // when collect_rows

  /// Everything else: the run's full instrument state, canonically ordered
  /// and deterministic — metrics.ToJson() is byte-identical across
  /// same-seed runs (a regression oracle alongside result_checksum).
  obs::MetricsSnapshot metrics;

  /// The ONE host-side measurement (events / wall-clock second, the
  /// perf_opt target metric). Deliberately kept out of the snapshot: it
  /// differs run to run, and the snapshot must not.
  double sim_events_per_sec_wall = 0.0;

  // --- Core run accessors --------------------------------------------------

  uint64_t records_in() const {            // records ingested from sources
    return metrics.CounterValue(obs::metric::kRecordsIn);
  }
  uint64_t records_emitted() const {       // result rows
    return metrics.CounterValue(obs::metric::kRecordsEmitted);
  }
  uint64_t result_checksum() const {       // order-insensitive digest
    return metrics.CounterValue(obs::metric::kResultChecksum);
  }
  Nanos makespan() const {                 // virtual time to drain all flows
    return Nanos(metrics.CounterValue(obs::metric::kRunMakespanNs));
  }
  uint64_t network_bytes() const {         // NIC transmit volume, all nodes
    return metrics.CounterValue(obs::metric::kNetworkTxBytes);
  }

  // --- Fault-tier accessors ------------------------------------------------
  // Transfers transparently re-posted after an error completion, credits
  // still held when the run ended (must be zero for a completed run — the
  // endurance tests assert it), and the injector's fault count / trace
  // digest for determinism regression.

  uint64_t channel_retries() const {
    return metrics.CounterValue(obs::metric::kChannelRetries);
  }
  uint64_t credits_outstanding() const {
    return metrics.CounterValue(obs::metric::kChannelCreditsOutstanding);
  }
  uint64_t faults_injected() const {
    return metrics.CounterValue(obs::metric::kFaultsInjected);
  }
  uint64_t fault_trace_digest() const {
    return metrics.CounterValue(obs::metric::kFaultTraceDigest);
  }

  // --- Checkpoint / recovery accessors (zero when checkpointing is off) ----

  uint64_t checkpoints_taken() const {     // snapshots recorded, all nodes
    return metrics.CounterValue(obs::metric::kCheckpointsTaken);
  }
  uint64_t checkpoint_bytes_replicated() const {  // bytes shipped to peers
    return metrics.CounterValue(obs::metric::kCheckpointBytesReplicated);
  }
  uint64_t recoveries() const {            // node crashes recovered from
    return metrics.CounterValue(obs::metric::kRecoveries);
  }
  Nanos recovery_ns() const {              // virtual time spent recovering
    return Nanos(metrics.CounterValue(obs::metric::kRecoveryNs));
  }
  uint64_t records_replayed() const {      // input re-read after rollback
    return metrics.CounterValue(obs::metric::kRecordsReplayed);
  }

  // --- Health / gray-failure accessors (zero when health is off) ----------

  uint64_t health_probes_sent() const {
    return metrics.CounterValue(obs::metric::kHealthProbesSent);
  }
  uint64_t health_probe_misses() const {
    return metrics.CounterValue(obs::metric::kHealthProbeMisses);
  }
  uint64_t suspicions() const {            // peers that crossed the threshold
    return metrics.CounterValue(obs::metric::kHealthSuspicions);
  }
  uint64_t health_false_positives() const {  // suspicions that recanted
    return metrics.CounterValue(obs::metric::kHealthFalsePositives);
  }
  uint64_t fence_events() const {          // minority-side self-fences
    return metrics.CounterValue(obs::metric::kHealthFenceEvents);
  }
  uint64_t quarantines() const {           // suspects excluded by the engine
    return metrics.CounterValue(obs::metric::kHealthQuarantines);
  }
  uint64_t rejoins() const {               // quarantined nodes welcomed back
    return metrics.CounterValue(obs::metric::kHealthRejoins);
  }

  // --- Elastic reconfiguration accessors (zero when reconfig is off) -------

  uint64_t reconfigs() const {             // join + leave events executed
    return metrics.CounterValue(obs::metric::kElasticReconfigs);
  }
  uint64_t elastic_joins() const {         // nodes that joined mid-run
    return metrics.CounterValue(obs::metric::kElasticJoins);
  }
  uint64_t elastic_leaves() const {        // nodes that left gracefully
    return metrics.CounterValue(obs::metric::kElasticLeaves);
  }
  uint64_t elastic_deferrals() const {     // events retried (engine busy)
    return metrics.CounterValue(obs::metric::kElasticDeferrals);
  }
  Nanos handoff_ns() const {               // virtual time in handoff pauses
    return Nanos(metrics.CounterValue(obs::metric::kElasticHandoffNs));
  }
  uint64_t partitions_moved() const {      // partitions that changed owner
    return metrics.CounterValue(obs::metric::kElasticPartitionsMoved);
  }
  uint64_t state_bytes_moved() const {     // SSB bytes READ during handoffs
    return metrics.CounterValue(obs::metric::kElasticStateBytesMoved);
  }
  uint64_t records_migrated() const {      // source records re-homed to a
    return metrics.CounterValue(            // different ingesting node
        obs::metric::kElasticRecordsMigrated);
  }
  uint64_t reconfig_trace_digest() const { // FNV-1a over the event trace
    return metrics.CounterValue(obs::metric::kElasticTraceDigest);
  }

  // --- DES-kernel accessors ------------------------------------------------

  uint64_t sim_events_fired() const {
    return metrics.CounterValue(obs::metric::kSimEventsFired);
  }
  double sim_pool_hit_rate() const {       // event-node pool recycling rate
    return metrics.GaugeValue(obs::metric::kSimPoolHitRate);
  }
  uint64_t sim_event_bytes_allocated() const {
    return metrics.CounterValue(obs::metric::kSimEventBytes);
  }
  double buffer_pool_hit_rate() const {    // fabric buffer pool (0 if unused)
    return metrics.GaugeValue(obs::metric::kBufferPoolHitRate);
  }

  // --- Derived views -------------------------------------------------------

  /// Top-down counters per role ("worker", "sender", "receiver", ...),
  /// rebuilt from the registry's role-labeled CPU instruments.
  std::map<std::string, perf::Counters> role_counters() const {
    return metrics.CpuByLabel(obs::metric::kCpu, obs::kLabelRole);
  }

  /// All role counters merged.
  perf::Counters TotalCounters() const {
    return metrics.CpuTotal(obs::metric::kCpu);
  }

  /// Per-buffer channel transfer latency (producer acquire to consumer
  /// poll), merged across channels.
  obs::Histogram buffer_latency() const {
    return metrics.HistogramValue(obs::metric::kTransferLatencyNs);
  }

  double throughput_rps() const {
    const Nanos ms = makespan();
    return ms > 0 ? double(records_in()) * 1e9 / double(ms) : 0.0;
  }

  /// Network transmit rate in gigaBYTES per second of virtual time
  /// (bytes/ns == GB/s; the NIC line rate to compare with is 11.8 GB/s).
  double network_gbytes_per_sec() const {
    const Nanos ms = makespan();
    return ms > 0 ? double(network_bytes()) / double(ms) : 0.0;
  }

  /// Simulated aggregate memory bandwidth, gigabytes per second.
  double memory_bandwidth_gbytes_per_sec() const {
    const Nanos ms = makespan();
    return ms > 0 ? double(TotalCounters().mem_bytes) / double(ms) : 0.0;
  }
};

/// Aggregate outcome of a multi-job run (SlashEngine::RunJobs): the
/// cluster-wide stats plus one per-tenant RunStats view per submitted job,
/// in submission order. Each job view's metrics are the cluster snapshot
/// filtered to that job's tenant label (shared/unlabeled instruments are
/// retained), so the RunStats accessors work unchanged on it.
struct MultiRunStats {
  /// OK when every job completed; the first terminal error otherwise.
  Status status;
  bool ok() const { return status.ok(); }

  /// The whole cluster: every instrument of the shared run.
  RunStats cluster;

  /// Per-job views, one per JobSpec in submission order.
  std::vector<RunStats> jobs;
};

/// A System under Test.
///
/// The primary entry point is job-oriented: Run(JobSpec) compiles the
/// job's logical plan through the operator registry and executes it. The
/// positional (query, workload, config) overload is a compatibility shim
/// that lowers the query into a plan and builds the equivalent JobSpec —
/// byte-identical results (asserted by tests/plan_test.cc). Derived
/// classes implement the JobSpec overload and pull the shim into scope
/// with `using Engine::Run;`.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string_view name() const = 0;

  /// Executes one job: compiles job.plan and runs it over job.sources on
  /// the cluster described by job.cluster + job.config.
  virtual RunStats Run(const JobSpec& job) = 0;

  /// Single-query convenience shim: lowers `query` (plan::Planner::Lower)
  /// into the equivalent JobSpec with an empty tenant and no quota.
  RunStats Run(const core::QuerySpec& query,
               const workloads::Workload& workload,
               const ClusterConfig& config);
};

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

/// The recovery coordinator: the control plane's durable view of which
/// checkpoint blobs exist and where their copies live.
///
/// Each node registers its serialized round-r snapshot locally when it takes
/// it (RecordLocal) and the replication protocol registers each peer that
/// received a complete copy (RecordReplica). A node whose input is fully
/// drained takes one terminal snapshot that stands in for every later round
/// (MarkFinalFrom). On a crash, the engine asks for the latest round K that
/// every node can be restored to using only copies held by live nodes —
/// survivors restore from their local blob, the dead node's heir restores
/// from the replica it received.
class RecoveryCoordinator {
 public:
  explicit RecoveryCoordinator(int nodes);

  /// Registers node `node`'s serialized round-`round` snapshot (held
  /// locally by the node itself).
  void RecordLocal(int node, uint64_t round, std::vector<uint8_t> bytes);

  /// Registers that `holder` received a complete replica of node `node`'s
  /// round-`round` snapshot.
  void RecordReplica(int node, uint64_t round, int holder);

  /// Declares node `node`'s round-`round` snapshot terminal: the node's
  /// input is fully drained, so that snapshot is valid for every round
  /// >= `round` as well.
  void MarkFinalFrom(int node, uint64_t round);

  /// The latest round K >= 1 such that every non-retired node has a usable
  /// snapshot for K with at least one copy on a node marked alive, or 0
  /// when no such round exists (recovery then restarts from empty state).
  uint64_t LatestRecoverableRound(const std::vector<bool>& alive) const;

  /// Excludes `node` from LatestRecoverableRound requirements for rounds
  /// AFTER `retirement_round`: its partitions were recovered onto an heir,
  /// which snapshots them from then on as part of its own blobs. Rounds at
  /// or before the retirement round still require the retired node's own
  /// blob (held by a live node) — they predate the heir's takeover.
  void RetireNode(int node, uint64_t retirement_round);

  /// Reverses RetireNode when a quarantined node rejoins after a partition
  /// heals: the node snapshots its own partitions again from the rollback
  /// round onward. Also clears any terminal mark — post-rejoin the node's
  /// input is replayed, so the old terminal snapshot no longer stands in
  /// for later rounds. Leaves any elastic join round (JoinNode) intact.
  void UnretireNode(int node);

  /// Elastic scale-out (src/elastic/): node `node` joins the running job at
  /// round `join_round`. Clears its retirement and records that the node
  /// has no blobs for rounds at or before the join — its partitions up to
  /// then live in the pre-join owners' blobs, so LatestRecoverableRound
  /// must not require the joiner's own copy for them (and restore must not
  /// look for one). Rounds after the join round require its blobs normally.
  void JoinNode(int node, uint64_t join_round);

  /// Node `node`'s join round (0 for nodes active since round 0).
  uint64_t join_round(int node) const { return join_round_[node]; }

  /// Drops every blob for rounds > `round` (and terminal marks past it).
  /// Called when recovery rolls the run back to round `round`: the later
  /// snapshots describe a timeline that no longer exists — after the
  /// rollback the entity-to-node placement changes, so regenerated rounds
  /// must not be confused with stale pre-crash ones.
  void DiscardRoundsAfter(uint64_t round);

  /// A live holder of node `node`'s round-`round` blob (the dead node's
  /// heir restores from this peer's replica), or -1 when none exists.
  int FirstLiveHolder(int node, uint64_t round,
                      const std::vector<bool>& alive) const;

  /// Node `node`'s snapshot bytes usable for round `round` (exact round or
  /// the terminal snapshot covering it); nullptr if none.
  const std::vector<uint8_t>* BlobFor(int node, uint64_t round) const;

  /// Snapshots recorded so far across all nodes.
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }

  /// Publishes coordinator activity into the run's registry: every
  /// RecordLocal bumps obs::metric::kCheckpointsTaken (under `labels`,
  /// e.g. {tenant=...} for multi-job runs), so the snapshot count reaches
  /// RunStats without engine-side copying.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const obs::LabelSet& labels = {});

 private:
  struct Blob {
    std::vector<uint8_t> bytes;
    std::vector<int> holders;
  };

  const Blob* FindBlob(int node, uint64_t round) const;

  int nodes_;
  std::vector<std::map<uint64_t, Blob>> blobs_;  // per node: round -> blob
  std::vector<int64_t> final_from_;              // -1 = not terminal yet
  std::vector<bool> retired_;
  std::vector<uint64_t> retire_round_;           // valid while retired_[n]
  std::vector<uint64_t> join_round_;             // 0 = active since round 0
  uint64_t checkpoints_taken_ = 0;
  obs::Counter* checkpoints_counter_ = nullptr;  // registry handle, optional
};

/// Append-only serializer for checkpoint blobs. Fixed-width little-endian
/// fields via memcpy; both engines share it so the recovery tests can treat
/// blob sizes uniformly.
class BlobWriter {
 public:
  explicit BlobWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void Bytes(const std::vector<uint8_t>& bytes) {
    U64(bytes.size());
    Raw(bytes.data(), bytes.size());
  }

 private:
  void Raw(const void* data, size_t len) {
    if (len == 0) return;  // empty Bytes(): memcpy from nullptr is UB
    const size_t pos = out_->size();
    out_->resize(pos + len);
    std::memcpy(out_->data() + pos, data, len);
  }

  std::vector<uint8_t>* out_;
};

/// Cursor-based reader matching BlobWriter. Out-of-bounds reads check-fail:
/// blobs are produced and consumed inside one process, so a short read is a
/// logic error, not input to tolerate.
class BlobReader {
 public:
  BlobReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  uint64_t U64() {
    uint64_t v;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v;
    Raw(&v, sizeof(v));
    return v;
  }
  std::vector<uint8_t> Bytes() {
    const uint64_t n = U64();
    std::vector<uint8_t> out(n);
    Raw(out.data(), n);
    return out;
  }
  bool done() const { return pos_ == len_; }

 private:
  void Raw(void* dst, size_t len);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Runs the simulator to completion under host wall-clock timing, publishes
/// the makespan and the DES-kernel instruments into `registry`, and reports
/// the host-side event rate through `events_per_sec_wall` (the one number
/// that may differ between same-seed runs, so it stays out of the
/// registry). Returns the virtual-time makespan, so engines use it as a
/// drop-in for `sim->Run()`.
inline Nanos TimedSimRun(sim::Simulator* sim, obs::MetricsRegistry* registry,
                         double* events_per_sec_wall) {
  const auto start = std::chrono::steady_clock::now();
  const Nanos makespan = sim->Run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *events_per_sec_wall = secs > 0 ? double(sim->events_fired()) / secs : 0.0;
  registry->GetCounter(obs::metric::kRunMakespanNs)
      ->Add(uint64_t(makespan));
  registry->GetCounter(obs::metric::kSimEventsFired)
      ->Add(sim->events_fired());
  registry->GetCounter(obs::metric::kSimEventBytes)
      ->Add(sim->event_bytes_allocated());
  registry->GetGauge(obs::metric::kSimPoolHitRate)->Set(sim->pool_hit_rate());
  return makespan;
}

/// The per-run observability plane every engine sets up at the top of
/// Run(): a fresh registry plus the tracer policy described at
/// ClusterConfig::tracer. Construct BEFORE the fabric, call Register() on
/// the run's simulator, and Finish() after the epilogue has published its
/// instruments.
class RunTelemetry {
 public:
  explicit RunTelemetry(const ClusterConfig& config)
      : external_(config.tracer),
        local_(obs::Tracer::Options{
            .capacity = 1 << 16,
            .enabled = config.tracer == nullptr &&
                       obs::Exporter::TraceDir() != nullptr}) {}

  obs::MetricsRegistry* registry() { return &registry_; }
  obs::Tracer* tracer() {
    return external_ != nullptr ? external_ : &local_;
  }

  void Register(sim::Simulator* sim) {
    sim->set_metrics(&registry_);
    // Null when disabled, so every trace point downstream is one branch.
    sim->set_tracer(tracer()->enabled() ? tracer() : nullptr);
  }

  /// Names the trace topology: one process per fabric node, the three
  /// conventional tracks per process. No-op when tracing is disabled.
  void NameNodes(int nodes) {
    obs::Tracer* t = tracer();
    if (!t->enabled()) return;
    for (int n = 0; n < nodes; ++n) {
      t->SetProcessName(n, "node" + std::to_string(n));
      t->SetTrackName(n, obs::kTrackEngine, "engine");
      t->SetTrackName(n, obs::kTrackChannel, "channel");
      t->SetTrackName(n, obs::kTrackRecovery, "recovery");
      t->SetTrackName(n, obs::kTrackHealth, "health");
      t->SetTrackName(n, obs::kTrackElastic, "elastic");
    }
  }

  /// Snapshots the registry into `stats` and, for the internal
  /// SLASH_TRACE-enabled tracer, writes the per-run trace + snapshot files.
  void Finish(RunStats* stats) {
    stats->metrics = registry_.Snapshot();
    if (external_ == nullptr && local_.enabled()) {
      obs::Exporter::WriteRunArtifacts(local_, stats->metrics,
                                       stats->engine);
    }
  }

 private:
  obs::MetricsRegistry registry_;
  obs::Tracer* external_;
  obs::Tracer local_;
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_ENGINE_H_
