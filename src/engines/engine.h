// The common engine interface: every System under Test (SUT) of the
// paper's evaluation implements it over the same substrates.
//
//   * SlashEngine       — the paper's contribution (native RDMA integration)
//   * UpParEngine       — "RDMA UpPar": lightweight integration; hash
//                          re-partitioning over RDMA channels
//   * FlinkLikeEngine   — plug-and-play integration; queue-based
//                          re-partitioning over sockets/IPoIB, managed-
//                          runtime overheads
//   * LightSaberEngine  — scale-up single-node late merge (COST yardstick)
//
// An Engine::Run executes one query over one workload on a simulated
// cluster and reports throughput (records per second of virtual time),
// result digests for correctness checks, network volume, per-role
// top-down counters, and buffer-latency histograms.
#ifndef SLASH_ENGINES_ENGINE_H_
#define SLASH_ENGINES_ENGINE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "channel/rdma_channel.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"
#include "core/pipeline.h"
#include "core/query.h"
#include "core/result_sink.h"
#include "perf/cost_model.h"
#include "rdma/fabric.h"
#include "rdma/socket_transport.h"
#include "sim/fault.h"
#include "workloads/workload.h"

namespace slash::engines {

/// Simulated cluster and engine configuration.
///
/// Defaults model the paper's testbed (Sec. 8.1.1): 10-core 2.4 GHz nodes,
/// ConnectX-4 EDR NICs at the measured 11.8 GB/s, c = 8 credits, 64 KiB
/// buffers. Input sizes and the epoch length are scaled down from the
/// paper's 1 GB/thread and 64 MiB so simulated runs complete quickly; both
/// are configurable.
struct ClusterConfig {
  int nodes = 2;
  int workers_per_node = 10;
  uint64_t records_per_worker = 20'000;
  double cpu_ghz = 2.4;

  channel::ChannelConfig channel;  // credits = 8, 64 KiB slots
  rdma::NicConfig nic;             // 11.8 GB/s, ~1 us
  rdma::SocketConfig socket;       // IPoIB penalties (Flink-like only)

  /// Epoch length in processed input bytes (paper default 64 MiB; scaled).
  uint64_t epoch_bytes = 4 * kMiB;

  /// Records deserialized per scheduling quantum of a worker coroutine.
  uint64_t source_batch = 512;

  /// State backend sizing.
  uint64_t state_lss_capacity = 1ULL << 20;
  size_t state_index_buckets = 1ULL << 14;

  uint64_t seed = 42;

  /// Pipeline execution strategy (Sec. 5.3): interpreted (default) or
  /// compiled/fused.
  core::ExecutionStrategy execution = core::ExecutionStrategy::kInterpreted;

  /// Slash only: ingest streams over RDMA channels from dedicated source
  /// nodes (the paper's Fig. 1 architecture — "data ingestion ... at full
  /// RDMA network speed") instead of reading pre-generated data from local
  /// memory (the evaluation methodology of Sec. 8.2.1). Doubles the
  /// simulated node count: one generator node per executor node.
  bool rdma_ingestion = false;

  /// Keep emitted result rows (tests); digests are always collected.
  bool collect_rows = false;

  /// Optional deterministic fault plan. When set (and non-empty), the
  /// engine registers a sim::FaultInjector before building the fabric;
  /// transient faults are absorbed by channel retry (results identical to
  /// the fault-free run), permanent ones abort the run cleanly with
  /// RunStats::status set. Not owned; must outlive the Run() call.
  const sim::FaultPlan* fault_plan = nullptr;

  const perf::CostModel* cost_model = &perf::CostModel::Default();
};

/// Outcome of one engine run.
struct RunStats {
  std::string engine;
  uint64_t records_in = 0;        // records ingested from sources
  uint64_t records_emitted = 0;   // result rows
  uint64_t result_checksum = 0;   // order-insensitive digest
  Nanos makespan = 0;             // virtual time to drain all flows
  uint64_t network_bytes = 0;     // NIC transmit volume
  std::vector<core::WindowResult> rows;  // when collect_rows

  /// OK for a completed run; the terminal error when a permanent fault
  /// (e.g. an unrecovered QP past the retry budget) aborted it. An aborted
  /// run still reports whatever partial stats it accumulated.
  Status status;
  bool ok() const { return status.ok(); }

  /// Fault-tier observability: transfers transparently re-posted after an
  /// error completion, credits still held when the run ended (must be zero
  /// for a completed run — the endurance tests assert it), and the
  /// injector's fault count / trace digest for determinism regression.
  uint64_t channel_retries = 0;
  uint64_t credits_outstanding = 0;
  uint64_t faults_injected = 0;
  uint64_t fault_trace_digest = 0;

  /// Top-down counters per role ("worker", "sender", "receiver").
  std::map<std::string, perf::Counters> role_counters;

  /// Per-buffer channel transfer latency (acquire to poll).
  LatencyHistogram buffer_latency;

  double throughput_rps() const {
    return makespan > 0 ? double(records_in) * 1e9 / double(makespan) : 0.0;
  }
  double network_gbps() const {
    return makespan > 0 ? double(network_bytes) / double(makespan) : 0.0;
  }

  /// All role counters merged.
  perf::Counters TotalCounters() const {
    perf::Counters total;
    for (const auto& [role, c] : role_counters) total.Merge(c);
    return total;
  }

  /// Simulated aggregate memory bandwidth, GB/s.
  double memory_bandwidth_gbps() const {
    return makespan > 0 ? double(TotalCounters().mem_bytes) / double(makespan)
                        : 0.0;
  }
};

/// A System under Test.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string_view name() const = 0;

  /// Executes `query` over `workload` on a cluster described by `config`.
  virtual RunStats Run(const core::QuerySpec& query,
                       const workloads::Workload& workload,
                       const ClusterConfig& config) = 0;
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_ENGINE_H_
