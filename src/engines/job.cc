#include "engines/job.h"

#include <utility>

namespace slash::engines {

ClusterConfig EffectiveConfig(const ClusterConfig& cluster,
                              const JobConfig& job) {
  ClusterConfig out = cluster;
  out.records_per_worker = job.records_per_worker;
  out.channel = job.channel;
  out.epoch_bytes = job.epoch_bytes;
  out.source_batch = job.source_batch;
  out.operator_batch = job.operator_batch;
  out.state_lss_capacity = job.state_lss_capacity;
  out.state_index_buckets = job.state_index_buckets;
  out.seed = job.seed;
  out.execution = job.execution;
  out.rdma_ingestion = job.rdma_ingestion;
  out.collect_rows = job.collect_rows;
  out.checkpoint = job.checkpoint;
  out.tracer = job.tracer;
  return out;
}

Status PrepareJob(const JobSpec& job, core::QuerySpec* query,
                  ClusterConfig* config, core::SourceFactory* sources) {
  if (job.sources == nullptr) {
    return Status::InvalidArgument("JobSpec has no workload (sources)");
  }
  if (Status compiled =
          plan::Compile(job.plan, plan::OperatorRegistry::Default(), query);
      !compiled.ok()) {
    return compiled;
  }
  *config = EffectiveConfig(job.cluster, job.config);
  if (sources != nullptr) {
    *sources = job.sources->Sources(config->records_per_worker, config->seed);
  }
  return Status::OK();
}

JobSpec MakeJobSpec(std::string tenant, const workloads::Workload& workload,
                    const ClusterConfig& cluster, const JobConfig& config,
                    uint32_t quota) {
  JobSpec job;
  job.tenant = std::move(tenant);
  job.plan = plan::Planner::Lower(workload.MakeQuery());
  job.sources = &workload;
  job.quota = quota;
  job.cluster = cluster;
  job.config = config;
  return job;
}

}  // namespace slash::engines
