// The Flink-like baseline: "plug-and-play integration" (paper Sec. 3.1),
// standing in for Apache Flink 1.9 deployed on IPoIB (Sec. 8.1.1).
//
// Architecture modeled: operator fission with queue-based hash
// re-partitioning, socket transport over IP-over-InfiniBand (kernel
// syscalls, user<->kernel copies, interrupts, far-below-line-rate
// goodput), dedicated network threads decoupled from processing threads by
// software queues, and a managed-runtime per-record overhead (object
// (de)serialization, virtual dispatch). The paper shows this design gains
// almost nothing from RDMA hardware; this engine reproduces why.
#ifndef SLASH_ENGINES_FLINK_ENGINE_H_
#define SLASH_ENGINES_FLINK_ENGINE_H_

#include "engines/engine.h"

namespace slash::engines {

class FlinkLikeEngine : public Engine {
 public:
  std::string_view name() const override { return "Flink (IPoIB)"; }

  using Engine::Run;  // the (query, workload, config) compatibility shim

  RunStats Run(const JobSpec& job) override;

 private:
  RunStats RunQuery(const core::QuerySpec& query,
                    const workloads::Workload& workload,
                    const ClusterConfig& config);
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_FLINK_ENGINE_H_
