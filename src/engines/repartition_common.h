// Shared machinery of the re-partitioning engines (RDMA UpPar and the
// Flink-like baseline): multi-flow source multiplexing with watermark
// tracking, and the in-memory queue used for same-node exchanges.
//
// Both engines split each node's workers into sender threads (source +
// stateless stages + hash partitioning + fan-out) and receiver threads
// (co-partitioned state + triggering), the configuration the paper uses
// (Sec. 8.2.2: "they use half the threads to execute the filter and
// projection and the second half for the window operator").
#ifndef SLASH_ENGINES_REPARTITION_COMMON_H_
#define SLASH_ENGINES_REPARTITION_COMMON_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "core/query.h"
#include "core/vector_clock.h"
#include "perf/cost_model.h"
#include "sim/simulator.h"

namespace slash::engines {

/// Round-robin multiplexer over several flows assigned to one sender
/// thread, tracking the sender's low watermark (min over its flows).
class FlowMux {
 public:
  explicit FlowMux(std::vector<std::unique_ptr<core::RecordSource>> flows)
      : flows_(std::move(flows)),
        last_ts_(flows_.size(), core::kWatermarkMin),
        consumed_(flows_.size(), 0) {}

  /// Next record, round-robin across non-exhausted flows. False when all
  /// flows are drained.
  bool Next(core::Record* out) {
    const size_t n = flows_.size();
    for (size_t step = 0; step < n; ++step) {
      const size_t f = (cursor_ + step) % n;
      if (flows_[f] == nullptr) continue;
      if (flows_[f]->Next(out)) {
        last_ts_[f] = out->timestamp;
        ++consumed_[f];
        cursor_ = (f + 1) % n;
        return true;
      }
      flows_[f] = nullptr;  // exhausted
      last_ts_[f] = core::kWatermarkMax;
    }
    return false;
  }

  /// The sender's low watermark.
  int64_t watermark() const {
    int64_t wm = core::kWatermarkMax;
    for (int64_t ts : last_ts_) wm = std::min(wm, ts);
    return wm;
  }

  size_t flow_count() const { return flows_.size(); }

  /// Records consumed from flow `f` so far (checkpoint offsets).
  uint64_t consumed(size_t f) const { return consumed_[f]; }

  /// Fast-forwards flow `f` past its first `count` records (recovery
  /// replays a flow deterministically from a checkpointed offset; the
  /// sources are seeded generators, so skipping re-derives the exact
  /// position and watermark of the checkpoint cut).
  void SkipTo(size_t f, uint64_t count) {
    core::Record r;
    for (uint64_t i = 0; i < count; ++i) {
      if (flows_[f] == nullptr || !flows_[f]->Next(&r)) {
        flows_[f] = nullptr;
        last_ts_[f] = core::kWatermarkMax;
        consumed_[f] = count;
        return;
      }
      last_ts_[f] = r.timestamp;
    }
    consumed_[f] = count;
  }

 private:
  std::vector<std::unique_ptr<core::RecordSource>> flows_;
  std::vector<int64_t> last_ts_;
  std::vector<uint64_t> consumed_;
  size_t cursor_ = 0;
};

/// The consumer a key is re-partitioned to (identical on every sender).
inline int ConsumerOf(uint64_t key, int total_consumers) {
  return static_cast<int>(Mix64(key ^ 0x9a97e17ULL) % uint64_t(total_consumers));
}

/// A same-node exchange: an in-memory queue between a sender and a
/// receiver thread. Queue-based handoff costs the synchronization penalty
/// the paper attributes to software queues [Kalia NSDI'19].
class LocalQueue {
 public:
  struct Buffer {
    std::vector<uint8_t> bytes;
    int64_t watermark = 0;
  };

  explicit LocalQueue(sim::Simulator* sim) : event_(sim) {}

  void Push(Buffer buffer, perf::CpuContext* cpu) {
    cpu->Charge(perf::Op::kQueueSync);
    queue_.push_back(std::move(buffer));
    event_.Notify();
    for (sim::Event* observer : observers_) observer->Notify();
  }

  bool TryPop(Buffer* out, perf::CpuContext* cpu) {
    if (queue_.empty()) {
      cpu->Charge(perf::Op::kPollPause);
      return false;
    }
    cpu->Charge(perf::Op::kQueueSync);
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  sim::Event& event() { return event_; }
  void AddObserver(sim::Event* observer) { observers_.push_back(observer); }

 private:
  std::deque<Buffer> queue_;
  sim::Event event_;
  std::vector<sim::Event*> observers_;
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_REPARTITION_COMMON_H_
