#include "engines/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace slash::engines {

RunStats Engine::Run(const core::QuerySpec& query,
                     const workloads::Workload& workload,
                     const ClusterConfig& config) {
  JobSpec job;
  job.plan = plan::Planner::Lower(query);
  job.sources = &workload;
  job.cluster = config;
  job.config = JobConfig(config);
  return Run(job);
}

RecoveryCoordinator::RecoveryCoordinator(int nodes)
    : nodes_(nodes), blobs_(nodes), final_from_(nodes, -1),
      retired_(nodes, false), retire_round_(nodes, 0),
      join_round_(nodes, 0) {}

void RecoveryCoordinator::RecordLocal(int node, uint64_t round,
                                      std::vector<uint8_t> bytes) {
  SLASH_CHECK_GE(node, 0);
  SLASH_CHECK_LT(node, nodes_);
  // Fencing invariant: a retired (quarantined/dead) node's snapshots are
  // taken by its heir under the heir's own identity, and no round may be
  // committed twice — a double commit would mean two nodes both believed
  // they led the same partitions for the same epoch (split brain).
  SLASH_CHECK_MSG(!retired_[node],
                  "retired node " << node << " attempted to commit round "
                                  << round);
  SLASH_CHECK_MSG(blobs_[node].count(round) == 0,
                  "epoch committed twice: node " << node << " round "
                                                 << round);
  Blob& blob = blobs_[node][round];
  blob.bytes = std::move(bytes);
  blob.holders.assign(1, node);
  ++checkpoints_taken_;
  if (checkpoints_counter_ != nullptr) checkpoints_counter_->Add(1);
}

void RecoveryCoordinator::AttachMetrics(obs::MetricsRegistry* registry,
                                        const obs::LabelSet& labels) {
  checkpoints_counter_ =
      registry->GetCounter(obs::metric::kCheckpointsTaken, labels);
}

void RecoveryCoordinator::RecordReplica(int node, uint64_t round, int holder) {
  auto it = blobs_[node].find(round);
  SLASH_CHECK_MSG(it != blobs_[node].end(),
                  "replica of an unrecorded snapshot: node "
                      << node << " round " << round);
  std::vector<int>& holders = it->second.holders;
  if (std::find(holders.begin(), holders.end(), holder) == holders.end()) {
    holders.push_back(holder);
  }
}

void RecoveryCoordinator::MarkFinalFrom(int node, uint64_t round) {
  SLASH_CHECK(blobs_[node].count(round) > 0);
  final_from_[node] = static_cast<int64_t>(round);
}

const RecoveryCoordinator::Blob* RecoveryCoordinator::FindBlob(
    int node, uint64_t round) const {
  auto it = blobs_[node].find(round);
  if (it != blobs_[node].end()) return &it->second;
  // A terminal snapshot stands in for every round past it.
  if (final_from_[node] >= 0 &&
      round >= static_cast<uint64_t>(final_from_[node])) {
    auto fit = blobs_[node].find(static_cast<uint64_t>(final_from_[node]));
    if (fit != blobs_[node].end()) return &fit->second;
  }
  return nullptr;
}

const std::vector<uint8_t>* RecoveryCoordinator::BlobFor(
    int node, uint64_t round) const {
  const Blob* blob = FindBlob(node, round);
  return blob != nullptr ? &blob->bytes : nullptr;
}

uint64_t RecoveryCoordinator::LatestRecoverableRound(
    const std::vector<bool>& alive) const {
  uint64_t max_round = 0;
  for (int node = 0; node < nodes_; ++node) {
    if (!blobs_[node].empty()) {
      max_round = std::max(max_round, blobs_[node].rbegin()->first);
    }
  }
  for (uint64_t k = max_round; k >= 1; --k) {
    bool all_restorable = true;
    for (int node = 0; node < nodes_ && all_restorable; ++node) {
      // A retired node is exempt only for rounds after its retirement: the
      // heir's own blobs carry its partitions from then on. At or before
      // the retirement round the retired node's blob (on a live holder) is
      // still required.
      if (retired_[node] && k > retire_round_[node]) continue;
      // An elastic joiner has no blobs at or before its join round — its
      // partitions up to then live in the pre-join owners' blobs.
      if (k <= join_round_[node]) continue;
      const Blob* blob = FindBlob(node, k);
      if (blob == nullptr) {
        all_restorable = false;
        break;
      }
      bool live_copy = false;
      for (int holder : blob->holders) live_copy |= alive[holder];
      all_restorable = live_copy;
    }
    if (all_restorable) return k;
  }
  return 0;
}

void RecoveryCoordinator::RetireNode(int node, uint64_t retirement_round) {
  SLASH_CHECK_GE(node, 0);
  SLASH_CHECK_LT(node, nodes_);
  retired_[node] = true;
  retire_round_[node] = retirement_round;
}

void RecoveryCoordinator::UnretireNode(int node) {
  SLASH_CHECK_GE(node, 0);
  SLASH_CHECK_LT(node, nodes_);
  retired_[node] = false;
  retire_round_[node] = 0;
  // The rejoined node replays input forward again, so a pre-quarantine
  // terminal snapshot must not stand in for rounds it will now regenerate.
  final_from_[node] = -1;
}

void RecoveryCoordinator::JoinNode(int node, uint64_t join_round) {
  SLASH_CHECK_GE(node, 0);
  SLASH_CHECK_LT(node, nodes_);
  retired_[node] = false;
  retire_round_[node] = 0;
  join_round_[node] = join_round;
  // The joiner starts snapshotting from join_round + 1; any stale terminal
  // mark from a pre-provisioning retirement must not stand in for them.
  final_from_[node] = -1;
}

void RecoveryCoordinator::DiscardRoundsAfter(uint64_t round) {
  for (int node = 0; node < nodes_; ++node) {
    std::map<uint64_t, Blob>& rounds = blobs_[node];
    rounds.erase(rounds.upper_bound(round), rounds.end());
    if (final_from_[node] >= 0 &&
        static_cast<uint64_t>(final_from_[node]) > round) {
      final_from_[node] = -1;
    }
    // A rollback below a node's join round re-runs the handoff epochs: the
    // joiner regenerates blobs from the rollback round onward, so they must
    // be required (and restorable) again from there.
    join_round_[node] = std::min(join_round_[node], round);
  }
}

int RecoveryCoordinator::FirstLiveHolder(int node, uint64_t round,
                                         const std::vector<bool>& alive) const {
  const Blob* blob = FindBlob(node, round);
  if (blob == nullptr) return -1;
  for (int holder : blob->holders) {
    if (alive[holder]) return holder;
  }
  return -1;
}

void BlobReader::Raw(void* dst, size_t len) {
  if (len == 0) return;  // empty Bytes(): memcpy to nullptr is UB
  SLASH_CHECK_LE(pos_ + len, len_);
  std::memcpy(dst, data_ + pos_, len);
  pos_ += len;
}

}  // namespace slash::engines
