// engine.h is header-only; this translation unit anchors it.
#include "engines/engine.h"
