#include "engines/flink_engine.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/record.h"
#include "engines/repartition_common.h"
#include "engines/trigger.h"
#include "state/partition.h"

namespace slash::engines {

namespace {

using core::Record;
using perf::Op;
using rdma::SocketConnection;

/// Framing header prepended to every socket message.
struct SocketFrame {
  int64_t watermark = 0;
  uint64_t final_marker = 0;
};

struct FlinkRun;

/// One outbound lane from a sender to a consumer.
struct Outbound {
  SocketConnection* socket = nullptr;  // remote lane
  LocalQueue* local = nullptr;         // same-node lane
  std::vector<uint8_t> staging;        // frame + serialized records
  std::unique_ptr<core::RecordWriter> writer;
};

struct SenderState {
  int global_id = 0;
  int node = 0;
  std::unique_ptr<perf::CpuContext> cpu;
  std::unique_ptr<FlowMux> mux;
  std::vector<Outbound> outbound;
};

struct ConsumerState {
  int global_id = 0;
  int node = 0;
  std::unique_ptr<perf::CpuContext> cpu;
  std::unique_ptr<state::Partition> partition;
  core::ResultSink sink;
  std::vector<int64_t> sender_wm;
  std::vector<bool> sender_final;
  int finals = 0;
  int64_t last_trigger_wm = core::kWatermarkMin;
  std::unique_ptr<sim::Event> arrivals;
  struct Inbound {
    int sender = 0;
    SocketConnection* socket = nullptr;
    LocalQueue* local = nullptr;
  };
  std::vector<Inbound> inbound;

  int64_t Watermark() const {
    return *std::min_element(sender_wm.begin(), sender_wm.end());
  }
};

struct FlinkRun {
  const core::QuerySpec* query;
  const workloads::Workload* workload;
  ClusterConfig config;
  sim::Simulator sim;
  std::unique_ptr<rdma::Fabric> fabric;
  std::vector<std::unique_ptr<SocketConnection>> sockets;
  std::vector<std::unique_ptr<LocalQueue>> local_queues;
  std::vector<std::unique_ptr<SenderState>> senders;
  std::vector<std::unique_ptr<ConsumerState>> consumers;
  uint64_t records_in = 0;
  LatencyHistogram latency;
  int senders_per_node = 0;
  int receivers_per_node = 0;
};

uint64_t LaneCapacity(const FlinkRun& run) {
  return run.config.channel.slot_bytes - channel::kFooterBytes;
}

void OpenLane(FlinkRun* run, Outbound* ob) {
  ob->staging.resize(sizeof(SocketFrame) + LaneCapacity(*run));
  ob->writer = std::make_unique<core::RecordWriter>(
      ob->staging.data() + sizeof(SocketFrame), LaneCapacity(*run));
}

sim::Task FlushLane(FlinkRun* run, SenderState* s, Outbound* ob,
                    int64_t watermark, bool final_marker) {
  perf::CpuContext* cpu = s->cpu.get();
  if (ob->writer == nullptr && !final_marker) co_return;
  if (ob->writer == nullptr) OpenLane(run, ob);
  SocketFrame frame;
  frame.watermark = final_marker ? core::kWatermarkMax : watermark;
  frame.final_marker = final_marker ? 1 : 0;
  const uint64_t len = sizeof(SocketFrame) + ob->writer->bytes_used();
  std::memcpy(ob->staging.data(), &frame, sizeof(frame));
  if (ob->socket != nullptr) {
    co_await ob->socket->Send(s->node, ob->staging.data(), len, cpu);
  } else {
    LocalQueue::Buffer buffer;
    buffer.bytes.assign(ob->staging.begin(), ob->staging.begin() + len);
    buffer.watermark = frame.watermark;
    // Flink's exchange is queue-based even locally, with an extra handoff
    // between the producing operator and the network stack's buffer pool.
    cpu->Charge(Op::kQueueSync);
    ob->local->Push(std::move(buffer), cpu);
  }
  ob->writer.reset();
  co_await cpu->Sync();
}

sim::Task Sender(FlinkRun* run, SenderState* s) {
  perf::CpuContext* cpu = s->cpu.get();
  core::RecordPipeline pipeline(run->query, cpu, run->config.execution);
  const int total_consumers = static_cast<int>(run->consumers.size());
  Record r;
  uint64_t batch = 0;
  while (s->mux->Next(&r)) {
    ++run->records_in;
    cpu->CountRecords(1);
    const uint16_t wire_size = run->workload->wire_size(r.stream_id);
    cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
    // Managed-runtime record handling: deserialization into objects,
    // virtual operator dispatch, serialization back into network buffers.
    cpu->Charge(Op::kRuntimeOverhead);
    if (pipeline.Process(&r)) {
      cpu->Charge(Op::kHashCompute);
      cpu->Charge(Op::kPartitionSelect);
      cpu->Charge(Op::kFanoutWrite);
      const int c = ConsumerOf(r.key, total_consumers);
      Outbound* ob = &s->outbound[c];
      if (ob->writer == nullptr) OpenLane(run, ob);
      if (!ob->writer->Append(r, wire_size)) {
        co_await FlushLane(run, s, ob, s->mux->watermark(),
                           /*final_marker=*/false);
        OpenLane(run, ob);
        SLASH_CHECK(ob->writer->Append(r, wire_size));
      }
    }
    if (++batch >= run->config.source_batch) {
      batch = 0;
      co_await cpu->Sync();
    }
  }
  for (Outbound& ob : s->outbound) {
    co_await FlushLane(run, s, &ob, s->mux->watermark(),
                       /*final_marker=*/false);
  }
  for (Outbound& ob : s->outbound) {
    co_await FlushLane(run, s, &ob, core::kWatermarkMax,
                       /*final_marker=*/true);
  }
  co_await cpu->Sync();
}

void ProcessFrame(FlinkRun* run, ConsumerState* c, const uint8_t* data,
                  uint64_t len, int sender) {
  perf::CpuContext* cpu = c->cpu.get();
  SLASH_CHECK_GE(len, sizeof(SocketFrame));
  SocketFrame frame;
  std::memcpy(&frame, data, sizeof(frame));
  core::RecordReader reader(data + sizeof(SocketFrame),
                            len - sizeof(SocketFrame));
  Record r;
  uint8_t wire_buf[512];
  while (reader.Next(&r)) {
    cpu->CountRecords(1);
    cpu->Charge(Op::kRecordParse);
    cpu->Charge(Op::kDmaColdRead);
    cpu->Charge(Op::kRuntimeOverhead);
    cpu->Charge(Op::kWindowAssign);
    cpu->Charge(Op::kIndexProbe);
    const int64_t bucket = run->query->window.BucketOf(r.timestamp);
    if (run->query->is_join()) {
      const uint16_t wire_size = run->workload->wire_size(r.stream_id);
      SLASH_CHECK_LE(size_t{wire_size}, sizeof(wire_buf));
      SerializeWireRecord(r, wire_size, wire_buf);
      cpu->Charge(Op::kStateAppend);
      cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
      c->partition->Append({r.key, bucket}, r.stream_id, wire_buf, wire_size);
    } else {
      cpu->Charge(Op::kStateRmw);
      c->partition->UpdateAggregate({r.key, bucket}, r.value);
    }
  }
  c->sender_wm[sender] = std::max(c->sender_wm[sender], frame.watermark);
  if (frame.final_marker != 0 && !c->sender_final[sender]) {
    c->sender_final[sender] = true;
    c->sender_wm[sender] = core::kWatermarkMax;
    ++c->finals;
  }
}

sim::Task Receiver(FlinkRun* run, ConsumerState* c) {
  perf::CpuContext* cpu = c->cpu.get();
  const int total_senders = static_cast<int>(run->senders.size());
  std::vector<uint8_t> message;
  while (c->finals < total_senders) {
    bool progressed = false;
    for (auto& in : c->inbound) {
      if (in.socket != nullptr) {
        while (in.socket->TryReceive(c->node, &message, cpu)) {
          progressed = true;
          // Handoff from the dedicated network thread to the processing
          // thread through a software queue.
          cpu->Charge(Op::kQueueSync);
          ProcessFrame(run, c, message.data(), message.size(), in.sender);
        }
      } else {
        LocalQueue::Buffer buffer;
        while (in.local->TryPop(&buffer, cpu)) {
          progressed = true;
          ProcessFrame(run, c, buffer.bytes.data(), buffer.bytes.size(),
                       in.sender);
        }
      }
    }
    if (progressed) {
      TriggerWindows(*run->query, c->Watermark(), c->partition.get(),
                     &c->sink, cpu, &c->last_trigger_wm);
      co_await cpu->Sync();
    } else {
      const Nanos wait_start = run->sim.now();
      co_await c->arrivals->Wait();
      cpu->ChargeWait(run->sim.now() - wait_start);
    }
  }
  TriggerWindows(*run->query, c->Watermark(), c->partition.get(), &c->sink,
                 cpu, &c->last_trigger_wm);
  co_await cpu->Sync();
}

}  // namespace

RunStats FlinkLikeEngine::Run(const core::QuerySpec& query,
                              const workloads::Workload& workload,
                              const ClusterConfig& config) {
  SLASH_CHECK_MSG(config.workers_per_node >= 2,
                  "re-partitioning engines need at least one sender and one "
                  "receiver per node");
  FlinkRun run;
  run.query = &query;
  run.workload = &workload;
  run.config = config;
  run.senders_per_node = config.workers_per_node / 2;
  run.receivers_per_node = config.workers_per_node - run.senders_per_node;

  rdma::FabricConfig fabric_config;
  fabric_config.nodes = config.nodes;
  fabric_config.nic = config.nic;
  run.fabric = std::make_unique<rdma::Fabric>(&run.sim, fabric_config);

  state::PartitionConfig pcfg;
  pcfg.kind = query.is_join() ? state::StateKind::kAppend
                              : state::StateKind::kAggregate;
  pcfg.lss_capacity = config.state_lss_capacity;
  pcfg.index_buckets = config.state_index_buckets;

  const int total_flows = config.nodes * config.workers_per_node;
  const int flows_per_sender = config.workers_per_node / run.senders_per_node;

  for (int node = 0; node < config.nodes; ++node) {
    for (int rcv = 0; rcv < run.receivers_per_node; ++rcv) {
      auto c = std::make_unique<ConsumerState>();
      c->global_id = node * run.receivers_per_node + rcv;
      c->node = node;
      c->cpu = std::make_unique<perf::CpuContext>(&run.sim, config.cost_model,
                                                  config.cpu_ghz);
      c->partition = std::make_unique<state::Partition>(c->global_id, pcfg);
      c->sink = core::ResultSink(config.collect_rows);
      c->arrivals = std::make_unique<sim::Event>(&run.sim);
      run.consumers.push_back(std::move(c));
    }
  }

  for (int node = 0; node < config.nodes; ++node) {
    for (int snd = 0; snd < run.senders_per_node; ++snd) {
      auto s = std::make_unique<SenderState>();
      s->global_id = node * run.senders_per_node + snd;
      s->node = node;
      s->cpu = std::make_unique<perf::CpuContext>(&run.sim, config.cost_model,
                                                  config.cpu_ghz);
      std::vector<std::unique_ptr<core::RecordSource>> flows;
      for (int f = 0; f < flows_per_sender; ++f) {
        const int flow = node * config.workers_per_node +
                         snd * flows_per_sender + f;
        flows.push_back(workload.MakeFlow(flow, total_flows,
                                          config.records_per_worker,
                                          config.seed));
      }
      s->mux = std::make_unique<FlowMux>(std::move(flows));
      s->outbound.resize(run.consumers.size());
      for (auto& consumer : run.consumers) {
        Outbound& ob = s->outbound[consumer->global_id];
        if (consumer->node == node) {
          run.local_queues.push_back(std::make_unique<LocalQueue>(&run.sim));
          ob.local = run.local_queues.back().get();
          ob.local->AddObserver(consumer->arrivals.get());
          consumer->inbound.push_back(
              {s->global_id, /*socket=*/nullptr, ob.local});
        } else {
          auto socket = std::make_unique<SocketConnection>(
              run.fabric.get(), node, consumer->node, config.socket);
          ob.socket = socket.get();
          socket->AddReadableObserver(consumer->node,
                                      consumer->arrivals.get());
          consumer->inbound.push_back(
              {s->global_id, socket.get(), /*local=*/nullptr});
          run.sockets.push_back(std::move(socket));
        }
      }
      run.senders.push_back(std::move(s));
    }
  }

  for (auto& c : run.consumers) {
    c->sender_wm.assign(run.senders.size(), core::kWatermarkMin);
    c->sender_final.assign(run.senders.size(), false);
  }

  for (auto& s : run.senders) run.sim.Spawn(Sender(&run, s.get()));
  for (auto& c : run.consumers) run.sim.Spawn(Receiver(&run, c.get()));

  RunStats stats;
  stats.engine = std::string(name());
  stats.makespan = run.sim.Run();
  SLASH_CHECK_MSG(run.sim.pending_tasks() == 0,
                  "Flink-like run deadlocked with " << run.sim.pending_tasks()
                                                    << " pending tasks");
  stats.records_in = run.records_in;
  stats.network_bytes = run.fabric->total_tx_bytes();
  stats.buffer_latency = run.latency;
  perf::Counters senders, receivers;
  for (auto& s : run.senders) senders.Merge(s->cpu->counters());
  for (auto& c : run.consumers) {
    receivers.Merge(c->cpu->counters());
    stats.records_emitted += c->sink.count();
    stats.result_checksum += c->sink.checksum();
    if (config.collect_rows) {
      const auto& rows = c->sink.rows();
      stats.rows.insert(stats.rows.end(), rows.begin(), rows.end());
    }
  }
  stats.role_counters["sender"] = senders;
  stats.role_counters["receiver"] = receivers;
  return stats;
}

}  // namespace slash::engines
