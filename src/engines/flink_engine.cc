#include "engines/flink_engine.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/record.h"
#include "core/record_batch.h"
#include "engines/repartition_common.h"
#include "engines/trigger.h"
#include "state/partition.h"

namespace slash::engines {

namespace {

using core::Record;
using perf::Op;
using rdma::SocketConnection;

// Recovery takes virtual time: a socket (re-)connect pays a TCP-style
// handshake, and restored snapshot bytes stream back into memory.
constexpr Nanos kSocketSetupCost = 30 * kMicrosecond;
constexpr uint64_t kRestoreBytesPerNs = 4;

// Checkpoint part kinds inside a node blob.
constexpr uint64_t kSenderPart = 0;
constexpr uint64_t kConsumerPart = 1;

/// Framing header prepended to every socket message. `barrier != 0` marks a
/// record-free checkpoint-barrier frame closing that round on this lane
/// (Chandy-Lamport aligned barriers, as Flink injects them into the
/// exchange streams).
struct SocketFrame {
  int64_t watermark = 0;
  uint64_t final_marker = 0;
  uint64_t barrier = 0;
};

struct FlinkRun;

/// One outbound lane from a sender to a consumer.
struct Outbound {
  SocketConnection* socket = nullptr;  // remote lane
  LocalQueue* local = nullptr;         // same-node lane
  std::vector<uint8_t> staging;        // frame + serialized records
  std::unique_ptr<core::RecordWriter> writer;
};

struct SenderState {
  int global_id = 0;
  int node = 0;  // current placement (heir after recovery)
  int attempt = 1;
  std::unique_ptr<perf::CpuContext> cpu;
  std::unique_ptr<FlowMux> mux;
  std::vector<Outbound> outbound;
  uint64_t consumed_total = 0;  // across flows, including restored skip
  uint64_t next_barrier = 1;
};

struct ConsumerState {
  int global_id = 0;
  int node = 0;  // current placement
  int attempt = 1;
  std::unique_ptr<perf::CpuContext> cpu;
  std::unique_ptr<state::Partition> partition;
  // Columnar staging buffer for ProcessFrame (sized to operator_batch,
  // allocated once — the receive path stays allocation-free per frame).
  std::unique_ptr<core::RecordBatch> batch;
  core::ResultSink sink;
  std::vector<int64_t> sender_wm;
  std::vector<bool> sender_final;
  int finals = 0;
  int64_t last_trigger_wm = core::kWatermarkMin;
  uint64_t rounds_complete = 0;  // checkpoint rounds aligned so far
  std::unique_ptr<sim::Event> arrivals;
  struct Inbound {
    int sender = 0;
    SocketConnection* socket = nullptr;
    LocalQueue* local = nullptr;
    uint64_t barrier_seen = 0;  // highest barrier round this lane delivered
  };
  std::vector<Inbound> inbound;

  int64_t Watermark() const {
    return *std::min_element(sender_wm.begin(), sender_wm.end());
  }
};

/// Accumulates one node's per-entity checkpoint parts into round blobs.
/// A round-r blob is complete when every entity placed on the node has
/// contributed its part for r (or has gone terminal — its last part then
/// stands in for every later round).
struct NodeCkpt {
  std::vector<int> entity_keys;  // senders: gid; consumers: S_total + gid
  std::map<uint64_t, std::map<int, std::vector<uint8_t>>> parts;
  std::map<int, std::vector<uint8_t>> terminal_parts;
  uint64_t assembled = 0;  // last fully assembled round
  bool final_marked = false;
};

/// Snapshot bytes queued for replication to this node's peers.
struct ReplState {
  struct Item {
    uint64_t round = 0;
    bool terminal = false;
    std::vector<uint8_t> bytes;
  };
  // Deque, not vector: the Replicator coroutine holds a reference to the
  // item it is chunking across suspension points while checkpoint rounds
  // keep appending; push_back must not invalidate references.
  std::deque<Item> items;
  std::unique_ptr<sim::Event> event;
};

struct FlinkRun {
  const core::QuerySpec* query;
  const workloads::Workload* workload;
  ClusterConfig config;
  sim::Simulator sim;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<rdma::Fabric> fabric;
  state::PartitionConfig pcfg;

  // Append-only across attempts; *_start marks the current attempt's slice.
  std::vector<std::unique_ptr<SocketConnection>> sockets;
  std::vector<std::unique_ptr<LocalQueue>> local_queues;
  std::vector<std::unique_ptr<SenderState>> senders;
  std::vector<std::unique_ptr<ConsumerState>> consumers;
  std::vector<std::unique_ptr<perf::CpuContext>> repl_cpus;
  std::vector<std::unique_ptr<ReplState>> repl_storage;
  size_t attempt_socket_start = 0;
  size_t attempt_sender_start = 0;
  size_t attempt_consumer_start = 0;
  size_t attempt_repl_start = 0;

  // Recovery control plane.
  std::unique_ptr<RecoveryCoordinator> coordinator;
  std::vector<NodeCkpt> ckpt;          // per node, current attempt
  std::vector<ReplState*> repl;        // per node, current attempt
  std::vector<bool> alive;
  std::vector<bool> retired;
  std::vector<int> sender_node;        // placement by sender gid
  std::vector<int> consumer_node;      // placement by consumer gid
  int attempt = 1;
  bool recovering = false;
  bool in_teardown = false;
  Nanos recovery_start = 0;
  uint64_t records_at_crash = 0;
  uint64_t recoveries = 0;
  Nanos recovery_ns = 0;
  uint64_t records_replayed = 0;
  uint64_t bytes_replicated = 0;
  bool failed = false;
  Status failure;

  uint64_t records_in = 0;
  // Observability handles (tracer null when disabled). No transfer-latency
  // histogram here: the socket exchange has no acquire/poll slot pair.
  obs::Tracer* tracer = nullptr;
  uint32_t trace_barrier = 0;
  uint32_t trace_window = 0;
  uint32_t trace_recovery = 0;
  uint32_t trace_cat = 0;
  int senders_per_node = 0;
  int receivers_per_node = 0;

  int senders_total() const { return config.nodes * senders_per_node; }
  int consumers_total() const { return config.nodes * receivers_per_node; }
  bool checkpointing() const { return config.checkpoint.enabled; }
  uint64_t BarrierInterval() const {
    if (config.checkpoint.interval_records > 0) {
      return config.checkpoint.interval_records;
    }
    return std::max<uint64_t>(1, config.records_per_worker / 4);
  }
};

void BuildAttempt(FlinkRun* run, uint64_t round);

void FailRun(FlinkRun* run, const Status& cause) {
  if (run->failed) return;
  run->failed = true;
  run->failure = cause;
  // Wake every parked coroutine (all attempts) so it can unwind.
  for (auto& socket : run->sockets) socket->Abort();
  for (auto& c : run->consumers) c->arrivals->Notify();
  for (auto& rs : run->repl_storage) rs->event->Notify();
}

uint64_t LaneCapacity(const FlinkRun& run) {
  return run.config.channel.slot_bytes - channel::kFooterBytes;
}

void OpenLane(FlinkRun* run, Outbound* ob) {
  ob->staging.resize(sizeof(SocketFrame) + LaneCapacity(*run));
  ob->writer = std::make_unique<core::RecordWriter>(
      ob->staging.data() + sizeof(SocketFrame), LaneCapacity(*run));
}

sim::Task SendFrame(FlinkRun* run, SenderState* s, Outbound* ob,
                    uint64_t payload_len, const SocketFrame& frame) {
  perf::CpuContext* cpu = s->cpu.get();
  const uint64_t len = sizeof(SocketFrame) + payload_len;
  std::memcpy(ob->staging.data(), &frame, sizeof(frame));
  if (ob->socket != nullptr) {
    co_await ob->socket->Send(s->node, ob->staging.data(), len, cpu);
  } else {
    LocalQueue::Buffer buffer;
    buffer.bytes.assign(ob->staging.begin(), ob->staging.begin() + len);
    buffer.watermark = frame.watermark;
    // Flink's exchange is queue-based even locally, with an extra handoff
    // between the producing operator and the network stack's buffer pool.
    cpu->Charge(Op::kQueueSync);
    ob->local->Push(std::move(buffer), cpu);
  }
  co_await cpu->Sync();
}

sim::Task FlushLane(FlinkRun* run, SenderState* s, Outbound* ob,
                    int64_t watermark, bool final_marker) {
  if (ob->writer == nullptr && !final_marker) co_return;
  if (ob->writer == nullptr) OpenLane(run, ob);
  SocketFrame frame;
  frame.watermark = final_marker ? core::kWatermarkMax : watermark;
  frame.final_marker = final_marker ? 1 : 0;
  const uint64_t payload = ob->writer->bytes_used();
  ob->writer.reset();
  co_await SendFrame(run, s, ob, payload, frame);
}

/// A record-free frame closing checkpoint round `round` on this lane.
sim::Task SendBarrier(FlinkRun* run, SenderState* s, Outbound* ob,
                      uint64_t round, int64_t watermark) {
  if (run->tracer != nullptr) {
    run->tracer->Instant(run->sim.now(), run->trace_barrier, run->trace_cat,
                         s->node, obs::kTrackEngine);
  }
  if (ob->staging.empty()) OpenLane(run, ob);
  ob->writer.reset();
  SocketFrame frame;
  frame.watermark = watermark;
  frame.barrier = round;
  co_await SendFrame(run, s, ob, /*payload_len=*/0, frame);
}

// --- Checkpoint assembly ---------------------------------------------------

void TryAssemble(FlinkRun* run, int node);

void Contribute(FlinkRun* run, int node, int entity_key, uint64_t round,
                std::vector<uint8_t> part, bool terminal) {
  if (run->failed) return;
  NodeCkpt& nc = run->ckpt[node];
  if (terminal) {
    nc.terminal_parts[entity_key] = std::move(part);
  } else {
    nc.parts[round][entity_key] = std::move(part);
  }
  TryAssemble(run, node);
}

void TryAssemble(FlinkRun* run, int node) {
  NodeCkpt& nc = run->ckpt[node];
  ReplState* repl = run->repl[node];
  // Sequential rounds first: round r is complete when every entity
  // contributed it (terminal entities stand in with their last part).
  for (;;) {
    const uint64_t r = nc.assembled + 1;
    auto rit = nc.parts.find(r);
    bool complete = true;
    for (int key : nc.entity_keys) {
      const bool in_round = rit != nc.parts.end() && rit->second.count(key);
      if (!in_round && !nc.terminal_parts.count(key)) {
        complete = false;
        break;
      }
    }
    // Purely-terminal "rounds" are handled below, not here: without at
    // least one fresh part there is no barrier driving round r.
    if (!complete || rit == nc.parts.end() || rit->second.empty()) break;
    std::vector<uint8_t> blob;
    BlobWriter w(&blob);
    w.U64(r);
    w.U64(nc.entity_keys.size());
    for (int key : nc.entity_keys) {
      const auto pit = rit->second.find(key);
      w.Bytes(pit != rit->second.end() ? pit->second
                                       : nc.terminal_parts.at(key));
    }
    run->coordinator->RecordLocal(node, r, blob);
    nc.parts.erase(rit);
    nc.assembled = r;
    repl->items.push_back({r, /*terminal=*/false, std::move(blob)});
    repl->event->Notify();
  }
  // All entities drained: one terminal blob stands in for every later round.
  if (!nc.final_marked &&
      nc.terminal_parts.size() == nc.entity_keys.size()) {
    const uint64_t r = nc.assembled + 1;
    std::vector<uint8_t> blob;
    BlobWriter w(&blob);
    w.U64(r);
    w.U64(nc.entity_keys.size());
    for (int key : nc.entity_keys) w.Bytes(nc.terminal_parts.at(key));
    run->coordinator->RecordLocal(node, r, blob);
    run->coordinator->MarkFinalFrom(node, r);
    nc.final_marked = true;
    nc.assembled = r;
    repl->items.push_back({r, /*terminal=*/true, std::move(blob)});
    repl->event->Notify();
  }
}

std::vector<uint8_t> SenderPart(const SenderState& s,
                                const std::vector<uint64_t>& offsets) {
  std::vector<uint8_t> part;
  BlobWriter w(&part);
  w.U64(kSenderPart);
  w.U64(uint64_t(s.global_id));
  w.U64(offsets.size());
  for (uint64_t o : offsets) w.U64(o);
  return part;
}

std::vector<uint8_t> ConsumerPart(const FlinkRun& run, ConsumerState* c) {
  std::vector<uint8_t> part;
  BlobWriter w(&part);
  w.U64(kConsumerPart);
  w.U64(uint64_t(c->global_id));
  w.I64(c->last_trigger_wm);
  std::vector<uint8_t> state;
  c->partition->Snapshot(&state);
  w.Bytes(state);
  w.U64(c->sink.count());
  w.U64(c->sink.checksum());
  const auto& rows = run.config.collect_rows
                         ? c->sink.rows()
                         : std::vector<core::WindowResult>{};
  w.U64(rows.size());
  for (const core::WindowResult& row : rows) {
    w.I64(row.bucket);
    w.U64(row.key);
    w.I64(row.value);
  }
  return part;
}

// --- Snapshot replication over sockets -------------------------------------

sim::Task Replicator(FlinkRun* run, int node, ReplState* repl,
                     SocketConnection* socket, perf::CpuContext* cpu,
                     int attempt) {
  const auto halted = [=] {
    return run->failed || run->attempt != attempt;
  };
  size_t cursor = 0;
  std::vector<uint8_t> staging;
  while (!halted()) {
    while (cursor < repl->items.size()) {
      const ReplState::Item& item = repl->items[cursor];
      staging.clear();
      BlobWriter w(&staging);
      w.U64(uint64_t(node));
      w.U64(item.round);
      w.U64(item.terminal ? 1 : 0);
      w.Bytes(item.bytes);
      co_await socket->Send(node, staging.data(), staging.size(), cpu);
      if (halted()) co_return;
      const bool terminal = repl->items[cursor].terminal;
      ++cursor;
      if (terminal) co_return;  // nothing further will be queued
    }
    const Nanos wait_start = run->sim.now();
    co_await repl->event->Wait();
    cpu->ChargeWait(run->sim.now() - wait_start);
  }
}

sim::Task ReplicaReceiver(FlinkRun* run, int target, SocketConnection* socket,
                          perf::CpuContext* cpu, int attempt) {
  const auto halted = [=] {
    return run->failed || run->attempt != attempt;
  };
  std::vector<uint8_t> message;
  while (!halted()) {
    bool terminal = false;
    while (socket->TryReceive(target, &message, cpu)) {
      BlobReader r(message.data(), message.size());
      const int src = int(r.U64());
      const uint64_t round = r.U64();
      terminal = r.U64() != 0;
      const std::vector<uint8_t> blob = r.Bytes();
      run->bytes_replicated += blob.size();
      run->coordinator->RecordReplica(src, round, target);
      if (terminal) break;
    }
    if (terminal) co_return;
    const Nanos wait_start = run->sim.now();
    co_await socket->readable(target).Wait();
    cpu->ChargeWait(run->sim.now() - wait_start);
  }
}

// --- Data plane ------------------------------------------------------------

sim::Task Sender(FlinkRun* run, SenderState* s) {
  const int attempt = s->attempt;
  const auto halted = [=] {
    return run->failed || run->attempt != attempt;
  };
  perf::CpuContext* cpu = s->cpu.get();
  core::RecordPipeline pipeline(run->query, cpu, run->config.execution);
  const int total_consumers = run->consumers_total();
  const uint64_t interval = run->BarrierInterval();
  const size_t nflows = s->mux->flow_count();
  // Columnar staging (config.operator_batch > 1): records are pulled from
  // the mux charge-free — capturing the watermark each one observed at read
  // time — and replayed in append order through the exact scalar per-record
  // sequence (DESIGN.md §11). A staged chunk never crosses an aligned-
  // barrier boundary: the barrier block reads the mux's flow offsets and
  // watermark directly, so the mux must not be read ahead of the cut.
  const uint32_t operator_batch =
      std::max<uint32_t>(1u, run->config.operator_batch);
  core::RecordBatch staged(operator_batch);
  Record r;
  uint64_t batch = 0;
  bool more = s->mux->Next(&r);
  while (!halted() && more) {
    uint64_t bound = operator_batch;
    if (run->checkpointing()) {
      const uint64_t target = s->next_barrier * interval;
      const uint64_t until_barrier =
          target > s->consumed_total ? target - s->consumed_total : 1;
      bound = std::min<uint64_t>(bound, until_barrier);
    }
    staged.Clear();
    staged.Append(r, s->mux->watermark());
    // Short-circuit keeps the mux un-read past the chunk: the next chunk's
    // first record is pulled only after this chunk (and any barrier on its
    // last record) has been replayed.
    while (staged.size() < bound && s->mux->Next(&r)) {
      staged.Append(r, s->mux->watermark());
    }
    for (uint32_t i = 0; !halted() && i < staged.size(); ++i) {
      Record cur = staged.Get(i);
      const int64_t staged_wm = staged.watermark(i);
      ++run->records_in;
      ++s->consumed_total;
      cpu->CountRecords(1);
      const uint16_t wire_size = run->workload->wire_size(cur.stream_id);
      cpu->ChargeBytes(Op::kSourceReadPerByte, wire_size);
      // Managed-runtime record handling: deserialization into objects,
      // virtual operator dispatch, serialization back into network buffers.
      cpu->Charge(Op::kRuntimeOverhead);
      if (pipeline.Process(&cur)) {
        cpu->Charge(Op::kHashCompute);
        cpu->Charge(Op::kPartitionSelect);
        cpu->Charge(Op::kFanoutWrite);
        const int c = ConsumerOf(cur.key, total_consumers);
        Outbound* ob = &s->outbound[c];
        if (ob->writer == nullptr) OpenLane(run, ob);
        if (!ob->writer->Append(cur, wire_size)) {
          co_await FlushLane(run, s, ob, staged_wm,
                             /*final_marker=*/false);
          if (halted()) co_return;
          OpenLane(run, ob);
          SLASH_CHECK(ob->writer->Append(cur, wire_size));
        }
      }
      // Aligned checkpoint barrier: flush pending data on every lane, then
      // close the round on every lane and record the flow offsets of this
      // exact cut (the round's replay positions). The staging bound
      // guarantees this fires only on the chunk's last record, when the
      // mux holds exactly the cut's offsets and watermark.
      if (run->checkpointing() &&
          s->consumed_total >= s->next_barrier * interval) {
        const uint64_t round = s->next_barrier++;
        std::vector<uint64_t> offsets(nflows);
        for (size_t f = 0; f < nflows; ++f) offsets[f] = s->mux->consumed(f);
        const int64_t wm = s->mux->watermark();
        for (Outbound& ob : s->outbound) {
          co_await FlushLane(run, s, &ob, wm, /*final_marker=*/false);
          if (halted()) co_return;
        }
        for (Outbound& ob : s->outbound) {
          co_await SendBarrier(run, s, &ob, round, wm);
          if (halted()) co_return;
        }
        Contribute(run, s->node, s->global_id, round, SenderPart(*s, offsets),
                   /*terminal=*/false);
      }
      if (++batch >= run->config.source_batch) {
        batch = 0;
        co_await cpu->Sync();
      }
    }
    if (halted()) break;
    more = s->mux->Next(&r);
  }
  if (halted()) co_return;
  for (Outbound& ob : s->outbound) {
    co_await FlushLane(run, s, &ob, s->mux->watermark(),
                       /*final_marker=*/false);
    if (halted()) co_return;
  }
  for (Outbound& ob : s->outbound) {
    co_await FlushLane(run, s, &ob, core::kWatermarkMax,
                       /*final_marker=*/true);
    if (halted()) co_return;
  }
  if (run->checkpointing()) {
    std::vector<uint64_t> offsets(nflows);
    for (size_t f = 0; f < nflows; ++f) offsets[f] = s->mux->consumed(f);
    Contribute(run, s->node, s->global_id, /*round=*/0,
               SenderPart(*s, offsets), /*terminal=*/true);
  }
  co_await cpu->Sync();
}

/// Applies one frame. Returns the barrier round it closed (0 for data and
/// final frames).
///
/// The frame's records are staged charge-free into the consumer's columnar
/// batch (chunked to operator_batch) and replayed in append order through
/// the scalar per-record sequence — byte-identical charges across batch
/// sizes (DESIGN.md §11).
uint64_t ProcessFrame(FlinkRun* run, ConsumerState* c, const uint8_t* data,
                      uint64_t len, int sender) {
  perf::CpuContext* cpu = c->cpu.get();
  SLASH_CHECK_GE(len, sizeof(SocketFrame));
  SocketFrame frame;
  std::memcpy(&frame, data, sizeof(frame));
  core::RecordBatch* staged = c->batch.get();
  core::RecordReader reader(data + sizeof(SocketFrame),
                            len - sizeof(SocketFrame));
  Record r;
  uint8_t wire_buf[512];
  bool more = reader.Next(&r);
  while (more) {
    staged->Clear();
    do {
      staged->Append(r);
      more = reader.Next(&r);
    } while (more && !staged->full());
    for (uint32_t i = 0; i < staged->size(); ++i) {
      const Record cur = staged->Get(i);
      cpu->CountRecords(1);
      cpu->Charge(Op::kRecordParse);
      cpu->Charge(Op::kDmaColdRead);
      cpu->Charge(Op::kRuntimeOverhead);
      cpu->Charge(Op::kWindowAssign);
      cpu->Charge(Op::kIndexProbe);
      const int64_t bucket = run->query->window.BucketOf(cur.timestamp);
      if (run->query->is_join()) {
        const uint16_t wire_size = run->workload->wire_size(cur.stream_id);
        SLASH_CHECK_LE(size_t{wire_size}, sizeof(wire_buf));
        SerializeWireRecord(cur, wire_size, wire_buf);
        cpu->Charge(Op::kStateAppend);
        cpu->ChargeBytes(Op::kBufferCopyPerByte, wire_size);
        c->partition->Append({cur.key, bucket}, cur.stream_id, wire_buf,
                             wire_size);
      } else {
        cpu->Charge(Op::kStateRmw);
        c->partition->UpdateAggregate({cur.key, bucket}, cur.value);
      }
    }
  }
  c->sender_wm[sender] = std::max(c->sender_wm[sender], frame.watermark);
  if (frame.final_marker != 0 && !c->sender_final[sender]) {
    c->sender_final[sender] = true;
    c->sender_wm[sender] = core::kWatermarkMax;
    ++c->finals;
  }
  return frame.barrier;
}

/// Completes checkpoint round rounds_complete+1 once every lane has either
/// delivered its barrier or gone final: force a trigger at the aligned
/// watermark (deterministic — it only depends on the cut), then snapshot.
void MaybeCompleteRound(FlinkRun* run, ConsumerState* c) {
  if (!run->checkpointing() || run->failed) return;
  for (;;) {
    const uint64_t r = c->rounds_complete + 1;
    bool all = true;
    bool any_barrier = false;
    for (const auto& in : c->inbound) {
      if (c->sender_final[in.sender]) continue;
      if (in.barrier_seen < r) {
        all = false;
        break;
      }
      any_barrier = true;
    }
    // All-final is the terminal path, not a barrier round.
    if (!all || !any_barrier) return;
    TriggerWindows(*run->query, c->Watermark(), c->partition.get(), &c->sink,
                   c->cpu.get(), &c->last_trigger_wm);
    Contribute(run, c->node, run->senders_total() + c->global_id, r,
               ConsumerPart(*run, c), /*terminal=*/false);
    c->rounds_complete = r;
  }
}

sim::Task Receiver(FlinkRun* run, ConsumerState* c) {
  const int attempt = c->attempt;
  const auto halted = [=] {
    return run->failed || run->attempt != attempt;
  };
  perf::CpuContext* cpu = c->cpu.get();
  const int total_senders = run->senders_total();
  std::vector<uint8_t> message;
  while (!halted() && c->finals < total_senders) {
    bool progressed = false;
    for (auto& in : c->inbound) {
      // Barrier alignment: a lane that already closed the next round is
      // not drained until every other lane catches up (its post-barrier
      // frames belong to the next checkpoint interval).
      if (run->checkpointing() && !c->sender_final[in.sender] &&
          in.barrier_seen > c->rounds_complete) {
        continue;
      }
      if (in.socket != nullptr) {
        while (in.socket->TryReceive(c->node, &message, cpu)) {
          progressed = true;
          // Handoff from the dedicated network thread to the processing
          // thread through a software queue.
          cpu->Charge(Op::kQueueSync);
          const uint64_t barrier =
              ProcessFrame(run, c, message.data(), message.size(), in.sender);
          if (barrier != 0) {
            in.barrier_seen = barrier;
            break;
          }
        }
      } else {
        LocalQueue::Buffer buffer;
        while (in.local->TryPop(&buffer, cpu)) {
          progressed = true;
          const uint64_t barrier = ProcessFrame(
              run, c, buffer.bytes.data(), buffer.bytes.size(), in.sender);
          if (barrier != 0) {
            in.barrier_seen = barrier;
            break;
          }
        }
      }
    }
    if (halted()) co_return;
    MaybeCompleteRound(run, c);
    if (progressed) {
      const int64_t before = c->last_trigger_wm;
      TriggerWindows(*run->query, c->Watermark(), c->partition.get(),
                     &c->sink, cpu, &c->last_trigger_wm);
      if (run->tracer != nullptr && c->last_trigger_wm != before) {
        run->tracer->Instant(run->sim.now(), run->trace_window, run->trace_cat,
                             c->node, obs::kTrackEngine);
      }
      co_await cpu->Sync();
    } else {
      const Nanos wait_start = run->sim.now();
      co_await c->arrivals->Wait();
      cpu->ChargeWait(run->sim.now() - wait_start);
    }
  }
  if (halted()) co_return;
  TriggerWindows(*run->query, c->Watermark(), c->partition.get(), &c->sink,
                 cpu, &c->last_trigger_wm);
  if (run->checkpointing()) {
    Contribute(run, c->node, run->senders_total() + c->global_id, /*round=*/0,
               ConsumerPart(*run, c), /*terminal=*/true);
  }
  co_await cpu->Sync();
}

// --- Crash recovery --------------------------------------------------------

void OnNodeCrash(FlinkRun* run, int node) {
  if (run->failed) return;
  if (!run->checkpointing()) {
    FailRun(run, Status::Unavailable(
                     "node " + std::to_string(node) +
                     " crashed and checkpointing is disabled; aborting"));
    return;
  }
  if (run->recovering) {
    FailRun(run, Status::Unavailable(
                     "node " + std::to_string(node) +
                     " crashed while a recovery was already in flight"));
    return;
  }
  run->alive[node] = false;
  int live = 0;
  for (int n = 0; n < run->config.nodes; ++n) live += run->alive[n] ? 1 : 0;
  if (live == 0) {
    FailRun(run, Status::Unavailable("last node crashed: no survivors"));
    return;
  }
  run->recovering = true;
  ++run->recoveries;
  ++run->attempt;
  run->recovery_start = run->sim.now();
  run->records_at_crash = run->records_in;
  if (run->tracer != nullptr) {
    run->tracer->Begin(run->sim.now(), run->trace_recovery, run->trace_cat,
                       node, obs::kTrackRecovery);
  }

  // Tear the whole attempt down: abort every socket so window-blocked
  // senders and parked receivers wake, observe the attempt bump, and
  // unwind. Survivors' in-flight exchanges are ahead of the rollback point
  // anyway.
  run->in_teardown = true;
  for (size_t i = run->attempt_socket_start; i < run->sockets.size(); ++i) {
    run->sockets[i]->Abort();
  }
  for (size_t i = run->attempt_consumer_start; i < run->consumers.size();
       ++i) {
    run->consumers[i]->arrivals->Notify();
  }
  for (size_t i = run->attempt_repl_start; i < run->repl_storage.size();
       ++i) {
    run->repl_storage[i]->event->Notify();
  }
  run->in_teardown = false;

  // Roll every task back to the latest round with a live copy of every
  // node's blob; the dead node's entities restart on an heir holding its
  // replica.
  const uint64_t round = run->coordinator->LatestRecoverableRound(run->alive);
  int heir = run->coordinator->FirstLiveHolder(node, round, run->alive);
  if (heir < 0) {
    for (int i = 1; i <= run->config.nodes && heir < 0; ++i) {
      const int cand = (node + i) % run->config.nodes;
      if (run->alive[cand]) heir = cand;
    }
  }
  run->coordinator->DiscardRoundsAfter(round);
  for (int& n : run->sender_node) {
    if (n == node) n = heir;
  }
  for (int& n : run->consumer_node) {
    if (n == node) n = heir;
  }

  uint64_t restore_bytes = 0;
  for (int n = 0; n < run->config.nodes; ++n) {
    const std::vector<uint8_t>* blob = run->coordinator->BlobFor(n, round);
    if (blob != nullptr) restore_bytes += blob->size();
  }
  uint64_t new_sockets = 0;
  for (int s = 0; s < run->senders_total(); ++s) {
    for (int cns = 0; cns < run->consumers_total(); ++cns) {
      if (run->sender_node[s] != run->consumer_node[cns]) ++new_sockets;
    }
  }
  const int rf = std::min(run->config.checkpoint.replication_factor, live - 1);
  new_sockets += uint64_t(live) * uint64_t(std::max(rf, 0));
  const Nanos delay = kSocketSetupCost * Nanos(new_sockets) +
                      Nanos(restore_bytes / kRestoreBytesPerNs);
  run->sim.ScheduleAt(run->sim.now() + delay, [run, round, node] {
    if (run->failed) return;
    run->recovery_ns += run->sim.now() - run->recovery_start;
    if (run->tracer != nullptr) {
      run->tracer->End(run->sim.now(), run->trace_recovery, run->trace_cat,
                       node, obs::kTrackRecovery);
    }
    BuildAttempt(run, round);
    run->recovering = false;
  });
}

/// Builds one attempt's task graph: fresh sender/consumer entities (stable
/// global ids, nodes per the current placement), exchange lanes, and
/// replication pairs; restores entity state from the round-`round` blobs
/// (round 0 = fresh start).
void BuildAttempt(FlinkRun* run, uint64_t round) {
  const ClusterConfig& config = run->config;
  const int attempt = run->attempt;
  run->attempt_socket_start = run->sockets.size();
  run->attempt_sender_start = run->senders.size();
  run->attempt_consumer_start = run->consumers.size();
  run->attempt_repl_start = run->repl_storage.size();

  // Restore parts from the blobs of every node that was ever primary,
  // including a just-dead one (its heir restores the replica). Nodes
  // retired by *earlier* recoveries have no usable blobs — their entities
  // were folded into their heir's blobs.
  std::map<int, std::vector<uint64_t>> sender_offsets;
  struct ConsumerRestore {
    int64_t last_trigger_wm = core::kWatermarkMin;
    std::vector<uint8_t> state;
    uint64_t count = 0;
    uint64_t checksum = 0;
    std::vector<core::WindowResult> rows;
  };
  std::map<int, ConsumerRestore> consumer_restore;
  if (round >= 1) {
    for (int n = 0; n < config.nodes; ++n) {
      if (run->retired[n]) continue;
      const std::vector<uint8_t>* blob = run->coordinator->BlobFor(n, round);
      SLASH_CHECK_MSG(blob != nullptr, "no restorable blob for node "
                                           << n << " at round " << round);
      BlobReader r(blob->data(), blob->size());
      r.U64();  // stored round (may predate `round` for terminal blobs)
      const uint64_t nparts = r.U64();
      for (uint64_t i = 0; i < nparts; ++i) {
        const std::vector<uint8_t> part = r.Bytes();
        BlobReader p(part.data(), part.size());
        const uint64_t kind = p.U64();
        const int gid = int(p.U64());
        if (kind == kSenderPart) {
          const uint64_t nflows = p.U64();
          std::vector<uint64_t> offsets(nflows);
          for (uint64_t f = 0; f < nflows; ++f) offsets[f] = p.U64();
          sender_offsets[gid] = std::move(offsets);
        } else {
          ConsumerRestore cr;
          cr.last_trigger_wm = p.I64();
          cr.state = p.Bytes();
          cr.count = p.U64();
          cr.checksum = p.U64();
          const uint64_t nrows = p.U64();
          cr.rows.resize(nrows);
          for (uint64_t j = 0; j < nrows; ++j) {
            cr.rows[j].bucket = p.I64();
            cr.rows[j].key = p.U64();
            cr.rows[j].value = p.I64();
          }
          consumer_restore[gid] = std::move(cr);
        }
      }
    }
  }

  // Fresh per-node checkpoint accumulators for this attempt's placement.
  run->ckpt.assign(size_t(config.nodes), NodeCkpt{});
  for (int s = 0; s < run->senders_total(); ++s) {
    run->ckpt[run->sender_node[s]].entity_keys.push_back(s);
  }
  for (int cns = 0; cns < run->consumers_total(); ++cns) {
    run->ckpt[run->consumer_node[cns]].entity_keys.push_back(
        run->senders_total() + cns);
  }
  for (int n = 0; n < config.nodes; ++n) run->ckpt[n].assembled = round;

  run->repl.assign(size_t(config.nodes), nullptr);
  if (run->checkpointing()) {
    for (int n = 0; n < config.nodes; ++n) {
      if (!run->alive[n]) continue;
      auto rs = std::make_unique<ReplState>();
      rs->event = std::make_unique<sim::Event>(&run->sim);
      run->repl[n] = rs.get();
      run->repl_storage.push_back(std::move(rs));
    }
  }

  // Consumers (stable gids; heir placement after a crash).
  const size_t consumer_base = run->consumers.size();
  for (int gid = 0; gid < run->consumers_total(); ++gid) {
    auto c = std::make_unique<ConsumerState>();
    c->global_id = gid;
    c->node = run->consumer_node[gid];
    c->attempt = attempt;
    c->cpu = std::make_unique<perf::CpuContext>(&run->sim, config.cost_model,
                                                config.cpu_ghz);
    c->partition = std::make_unique<state::Partition>(gid, run->pcfg);
    c->batch = std::make_unique<core::RecordBatch>(
        std::max<uint32_t>(1u, config.operator_batch));
    c->sink = core::ResultSink(config.collect_rows);
    c->arrivals = std::make_unique<sim::Event>(&run->sim);
    c->rounds_complete = round;
    const auto rit = consumer_restore.find(gid);
    if (rit != consumer_restore.end()) {
      ConsumerRestore& cr = rit->second;
      if (!cr.state.empty()) {
        const Status restored =
            c->partition->Restore(cr.state.data(), cr.state.size());
        SLASH_CHECK_MSG(restored.ok(), restored.message());
      }
      c->sink.Restore(cr.count, cr.checksum, std::move(cr.rows));
      c->last_trigger_wm = cr.last_trigger_wm;
    }
    c->sender_wm.assign(size_t(run->senders_total()), core::kWatermarkMin);
    c->sender_final.assign(size_t(run->senders_total()), false);
    run->consumers.push_back(std::move(c));
  }

  // Senders. Flow ids derive from the sender's *home* decomposition so a
  // replay re-reads exactly the flows the dead node owned.
  const int flows_per_sender = config.workers_per_node / run->senders_per_node;
  const int total_flows = config.nodes * config.workers_per_node;
  uint64_t restored_records = 0;
  for (int gid = 0; gid < run->senders_total(); ++gid) {
    auto s = std::make_unique<SenderState>();
    s->global_id = gid;
    s->node = run->sender_node[gid];
    s->attempt = attempt;
    s->next_barrier = round + 1;
    s->cpu = std::make_unique<perf::CpuContext>(&run->sim, config.cost_model,
                                                config.cpu_ghz);
    const int home = gid / run->senders_per_node;
    const int snd = gid % run->senders_per_node;
    std::vector<std::unique_ptr<core::RecordSource>> flows;
    for (int f = 0; f < flows_per_sender; ++f) {
      const int flow =
          home * config.workers_per_node + snd * flows_per_sender + f;
      flows.push_back(run->workload->MakeFlow(
          flow, total_flows, config.records_per_worker, config.seed));
    }
    s->mux = std::make_unique<FlowMux>(std::move(flows));
    const auto oit = sender_offsets.find(gid);
    if (oit != sender_offsets.end()) {
      for (size_t f = 0; f < oit->second.size(); ++f) {
        s->mux->SkipTo(f, oit->second[f]);
        s->consumed_total += oit->second[f];
        restored_records += oit->second[f];
      }
    }
    s->outbound.resize(size_t(run->consumers_total()));
    for (int cgid = 0; cgid < run->consumers_total(); ++cgid) {
      ConsumerState* c = run->consumers[consumer_base + size_t(cgid)].get();
      Outbound& ob = s->outbound[cgid];
      if (c->node == s->node) {
        run->local_queues.push_back(std::make_unique<LocalQueue>(&run->sim));
        ob.local = run->local_queues.back().get();
        ob.local->AddObserver(c->arrivals.get());
        c->inbound.push_back({gid, /*socket=*/nullptr, ob.local, round});
      } else {
        auto socket = std::make_unique<SocketConnection>(
            run->fabric.get(), s->node, c->node, config.socket);
        ob.socket = socket.get();
        socket->AddReadableObserver(c->node, c->arrivals.get());
        c->inbound.push_back({gid, socket.get(), /*local=*/nullptr, round});
        run->sockets.push_back(std::move(socket));
      }
    }
    run->senders.push_back(std::move(s));
  }

  // Replication pairs: each live node ships its blobs to the next
  // replication_factor live nodes (cyclically).
  if (run->checkpointing()) {
    std::vector<int> live_nodes;
    for (int n = 0; n < config.nodes; ++n) {
      if (run->alive[n]) live_nodes.push_back(n);
    }
    const int rf = std::min<int>(config.checkpoint.replication_factor,
                                 int(live_nodes.size()) - 1);
    for (size_t i = 0; i < live_nodes.size(); ++i) {
      const int src = live_nodes[i];
      for (int k = 1; k <= rf; ++k) {
        const int target = live_nodes[(i + size_t(k)) % live_nodes.size()];
        auto socket = std::make_unique<SocketConnection>(
            run->fabric.get(), src, target, config.socket);
        auto send_cpu = std::make_unique<perf::CpuContext>(
            &run->sim, config.cost_model, config.cpu_ghz);
        auto recv_cpu = std::make_unique<perf::CpuContext>(
            &run->sim, config.cost_model, config.cpu_ghz);
        run->sim.Spawn(Replicator(run, src, run->repl[src], socket.get(),
                                  send_cpu.get(), attempt));
        run->sim.Spawn(ReplicaReceiver(run, target, socket.get(),
                                       recv_cpu.get(), attempt));
        run->repl_cpus.push_back(std::move(send_cpu));
        run->repl_cpus.push_back(std::move(recv_cpu));
        run->sockets.push_back(std::move(socket));
      }
    }
  }

  if (attempt > 1) {
    run->records_replayed += run->records_at_crash - restored_records;
    run->records_in = restored_records;
  }
  if (!run->alive.empty()) {
    for (int n = 0; n < config.nodes; ++n) {
      if (!run->alive[n] && !run->retired[n]) {
        run->coordinator->RetireNode(n, round);
        run->retired[n] = true;
      }
    }
  }

  for (size_t i = run->attempt_sender_start; i < run->senders.size(); ++i) {
    run->sim.Spawn(Sender(run, run->senders[i].get()));
  }
  for (size_t i = run->attempt_consumer_start; i < run->consumers.size();
       ++i) {
    run->sim.Spawn(Receiver(run, run->consumers[i].get()));
  }
}

}  // namespace

RunStats FlinkLikeEngine::Run(const JobSpec& job) {
  core::QuerySpec query;
  ClusterConfig config;
  if (Status prepared = PrepareJob(job, &query, &config); !prepared.ok()) {
    RunStats stats;
    stats.engine = std::string(name());
    stats.status = prepared;
    return stats;
  }
  return RunQuery(query, *job.sources, config);
}

RunStats FlinkLikeEngine::RunQuery(const core::QuerySpec& query,
                                   const workloads::Workload& workload,
                                   const ClusterConfig& config) {
  SLASH_CHECK_MSG(config.workers_per_node >= 2,
                  "re-partitioning engines need at least one sender and one "
                  "receiver per node");
  FlinkRun run;
  run.query = &query;
  run.workload = &workload;
  run.config = config;
  run.senders_per_node = config.workers_per_node / 2;
  run.receivers_per_node = config.workers_per_node - run.senders_per_node;

  RunStats stats;
  stats.engine = std::string(name());
  if (config.health.enabled) {
    stats.status = Status::Unimplemented(
        "health monitoring requires the Slash engine's quarantine/recovery "
        "path");
    return stats;
  }
  if (config.reconfig != nullptr) {
    stats.status = Status::Unimplemented(
        "elastic reconfiguration requires the Slash engine's handoff path");
    return stats;
  }

  RunTelemetry telemetry(config);
  obs::MetricsRegistry* registry = telemetry.registry();

  // The injector must be registered before the fabric is built so the
  // fabric attaches itself as the fault target at construction. The plan is
  // validated up front: a malformed plan is a configuration error, not a
  // mid-run surprise.
  if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
    const Status plan_status = config.fault_plan->Validate(config.nodes);
    if (!plan_status.ok()) {
      stats.status = plan_status;
      return stats;
    }
    run.injector =
        std::make_unique<sim::FaultInjector>(&run.sim, *config.fault_plan);
    run.sim.set_fault_injector(run.injector.get());
  }

  // Telemetry is registered on the simulator before the fabric is built so
  // the NICs resolve their per-node tx counters at construction.
  telemetry.Register(&run.sim);
  telemetry.NameNodes(config.nodes);
  run.tracer = run.sim.tracer();
  if (run.tracer != nullptr) {
    run.trace_barrier = run.tracer->Intern("engine.barrier");
    run.trace_window = run.tracer->Intern("engine.window_fire");
    run.trace_recovery = run.tracer->Intern("recovery");
    run.trace_cat = run.tracer->Intern("flink");
  }

  rdma::FabricConfig fabric_config;
  fabric_config.nodes = config.nodes;
  fabric_config.nic = config.nic;
  fabric_config.connection = config.connection;
  run.fabric = std::make_unique<rdma::Fabric>(&run.sim, fabric_config);
  run.fabric->SetNodeCrashHandler(
      [run_ptr = &run](int node) { OnNodeCrash(run_ptr, node); });

  run.pcfg.kind = query.is_join() ? state::StateKind::kAppend
                                  : state::StateKind::kAggregate;
  run.pcfg.lss_capacity = config.state_lss_capacity;
  run.pcfg.index_buckets = config.state_index_buckets;

  run.coordinator = std::make_unique<RecoveryCoordinator>(config.nodes);
  run.coordinator->AttachMetrics(registry);
  run.alive.assign(size_t(config.nodes), true);
  run.retired.assign(size_t(config.nodes), false);
  run.sender_node.resize(size_t(run.senders_total()));
  for (int s = 0; s < run.senders_total(); ++s) {
    run.sender_node[s] = s / run.senders_per_node;
  }
  run.consumer_node.resize(size_t(run.consumers_total()));
  for (int c = 0; c < run.consumers_total(); ++c) {
    run.consumer_node[c] = c / run.receivers_per_node;
  }

  BuildAttempt(&run, /*round=*/0);

  TimedSimRun(&run.sim, registry, &stats.sim_events_per_sec_wall);
  // An aborted run legitimately strands coroutines that were mid-exchange
  // when their socket died; only a *completed* run must fully drain.
  SLASH_CHECK_MSG(run.failed || run.sim.pending_tasks() == 0,
                  "Flink-like run deadlocked with " << run.sim.pending_tasks()
                                                    << " pending tasks");
  stats.status = run.failed ? run.failure : Status::OK();
  if (run.injector) {
    registry->GetCounter(obs::metric::kFaultsInjected)
        ->Add(run.injector->trace().size());
    registry->GetCounter(obs::metric::kFaultTraceDigest)
        ->Add(run.injector->trace_digest());
  }
  registry->GetCounter(obs::metric::kRecordsIn)->Add(run.records_in);
  if (const auto& pool = run.fabric->buffer_pool();
      pool.hits() + pool.misses() > 0) {
    registry->GetGauge(obs::metric::kBufferPoolHitRate)->Set(pool.hit_rate());
  }
  registry->GetCounter(obs::metric::kCheckpointBytesReplicated)
      ->Add(run.bytes_replicated);
  registry->GetCounter(obs::metric::kRecoveries)->Add(run.recoveries);
  registry->GetCounter(obs::metric::kRecoveryNs)->Add(run.recovery_ns);
  registry->GetCounter(obs::metric::kRecordsReplayed)
      ->Add(run.records_replayed);
  // Results come from the surviving attempt's consumers only; CPU counters
  // accumulate across every attempt — a torn-down attempt still burned the
  // cycles.
  obs::Counter* emitted = registry->GetCounter(obs::metric::kRecordsEmitted);
  obs::Counter* checksum = registry->GetCounter(obs::metric::kResultChecksum);
  for (size_t i = run.attempt_consumer_start; i < run.consumers.size(); ++i) {
    const ConsumerState* c = run.consumers[i].get();
    emitted->Add(c->sink.count());
    checksum->Add(c->sink.checksum());
    if (config.collect_rows) {
      const auto& rows = c->sink.rows();
      stats.rows.insert(stats.rows.end(), rows.begin(), rows.end());
    }
  }
  perf::Counters* senders =
      registry->GetCpu(obs::metric::kCpu, {{obs::kLabelRole, "sender"}});
  for (auto& s : run.senders) senders->Merge(s->cpu->counters());
  perf::Counters* receivers =
      registry->GetCpu(obs::metric::kCpu, {{obs::kLabelRole, "receiver"}});
  for (auto& c : run.consumers) receivers->Merge(c->cpu->counters());
  if (!run.repl_cpus.empty()) {
    perf::Counters* replication =
        registry->GetCpu(obs::metric::kCpu, {{obs::kLabelRole, "replication"}});
    for (auto& cpu : run.repl_cpus) replication->Merge(cpu->counters());
  }
  telemetry.Finish(&stats);
  return stats;
}

}  // namespace slash::engines
