// RDMA UpPar: the "lightweight integration" straw man (paper Sec. 3.1).
//
// UpPar keeps the classic scale-out SPE architecture — operator fission
// with hash re-partitioning so every physical window operator owns a
// disjoint key partition — and merely replaces socket transports with
// Slash's RDMA channels. Per node, half the worker threads are *senders*
// (source, filter/projection, per-record partitioning, fan-out buffers)
// and half are *receivers* (co-partitioned window state, triggering).
//
// This is the paper's strongest baseline, and its failure mode is the
// paper's central claim: partitioning is CPU-bound (front-end stalls from
// the branchy fan-out code), the sender throughput caps the pipeline, and
// skewed keys overload single receivers — RDMA alone does not fix a
// re-partitioning design.
#ifndef SLASH_ENGINES_UPPAR_ENGINE_H_
#define SLASH_ENGINES_UPPAR_ENGINE_H_

#include "engines/engine.h"

namespace slash::engines {

class UpParEngine : public Engine {
 public:
  std::string_view name() const override { return "RDMA UpPar"; }

  using Engine::Run;  // the (query, workload, config) compatibility shim

  RunStats Run(const JobSpec& job) override;

 private:
  RunStats RunQuery(const core::QuerySpec& query,
                    const workloads::Workload& workload,
                    const ClusterConfig& config);
};

}  // namespace slash::engines

#endif  // SLASH_ENGINES_UPPAR_ENGINE_H_
