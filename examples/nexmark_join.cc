// Example: distributed windowed stream joins on Slash — NEXMark Q8
// (tumbling-window join of auctions and sellers) and Q11 (session-window
// join of bids and sellers), verified against the sequential reference.
//
// Demonstrates holistic window state: both streams' records are appended
// into the distributed hash table (CRDT = grow-only set), shipped as epoch
// deltas, and joined lazily at trigger time on the merged state.
//
//   $ ./build/examples/nexmark_join
#include <cstdio>
#include <memory>

#include "bench_util/harness.h"
#include "core/oracle.h"
#include "engines/slash_engine.h"
#include "workloads/nexmark.h"

namespace {

void RunJoin(const slash::workloads::Workload& workload) {
  const slash::core::QuerySpec query = workload.MakeQuery();

  slash::engines::ClusterConfig cluster;
  cluster.nodes = 4;
  cluster.workers_per_node = 4;
  cluster.records_per_worker = 8'000;
  cluster.collect_rows = true;

  slash::engines::SlashEngine engine;
  const slash::engines::RunStats stats = engine.Run(query, workload, cluster);
  slash::bench::RequireCompleted(stats, "nexmark_join");

  const slash::core::OracleOutput oracle = slash::core::ComputeOracle(
      query, workload.Sources(cluster.records_per_worker, cluster.seed),
      cluster.nodes * cluster.workers_per_node);

  uint64_t total_pairs = 0;
  for (const auto& row : stats.rows) total_pairs += uint64_t(row.value);

  std::printf("%-5s | %9.1f Mrec/s | %7llu joined keys | %9llu pairs | %s\n",
              std::string(workload.name()).c_str(),
              stats.throughput_rps() / 1e6,
              static_cast<unsigned long long>(stats.records_emitted()),
              static_cast<unsigned long long>(total_pairs),
              stats.result_checksum() == oracle.checksum ? "oracle PASS"
                                                       : "oracle FAIL");
}

}  // namespace

int main() {
  std::printf("Distributed windowed joins on Slash (4 nodes x 4 workers)\n\n");

  slash::workloads::NexmarkConfig cfg;
  cfg.sellers = 2'000;

  slash::workloads::Nb8Workload nb8(cfg);
  RunJoin(nb8);

  slash::workloads::Nb11Workload nb11(cfg);
  RunJoin(nb11);

  std::printf(
      "\nNB8 appends 269 B auction / 206 B seller tuples (large state);\n"
      "NB11 sessions split lazily at trigger time on the merged state.\n");
  return 0;
}
