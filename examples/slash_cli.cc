// slash_cli: run any paper workload on any engine from the command line.
//
//   $ ./build/examples/slash_cli [options]
//     --engine   slash | uppar | flink | lightsaber     (default slash)
//     --workload ysb | cm | nb7 | nb8 | nb11 | ro       (default ysb)
//     --nodes N            (default 4; lightsaber forces 1)
//     --workers N          (default 8)
//     --records N          records per worker (default 20000)
//     --epoch-kib N        SSB epoch length (default 1024)
//     --credits N          RDMA channel credits (default 8)
//     --slot-kib N         channel slot size (default 32)
//     --zipf Z             key skew for ysb/ro (default: workload default)
//     --compiled           fused/compiled execution strategy
//     --verify             compare results against the sequential oracle
//
// Example:
//   $ ./build/examples/slash_cli --engine uppar --workload cm --nodes 8 \
//       --workers 10 --verify
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "core/oracle.h"
#include "engines/flink_engine.h"
#include "engines/lightsaber_engine.h"
#include "engines/slash_engine.h"
#include "engines/uppar_engine.h"
#include "workloads/cluster_monitoring.h"
#include "workloads/nexmark.h"
#include "workloads/readonly.h"
#include "workloads/ysb.h"

namespace {

struct Options {
  std::string engine = "slash";
  std::string workload = "ysb";
  int nodes = 4;
  int workers = 8;
  uint64_t records = 20'000;
  uint64_t epoch_kib = 1024;
  uint32_t credits = 8;
  uint64_t slot_kib = 32;
  double zipf = -1.0;  // <0: workload default
  bool compiled = false;
  bool verify = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine slash|uppar|flink|lightsaber] "
               "[--workload ysb|cm|nb7|nb8|nb11|ro] [--nodes N] "
               "[--workers N] [--records N] [--epoch-kib N] [--credits N] "
               "[--slot-kib N] [--zipf Z] [--compiled] [--verify]\n",
               argv0);
  std::exit(2);
}

bool ParseOptions(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      opts->engine = next("--engine");
    } else if (arg == "--workload") {
      opts->workload = next("--workload");
    } else if (arg == "--nodes") {
      opts->nodes = std::atoi(next("--nodes"));
    } else if (arg == "--workers") {
      opts->workers = std::atoi(next("--workers"));
    } else if (arg == "--records") {
      opts->records = std::strtoull(next("--records"), nullptr, 10);
    } else if (arg == "--epoch-kib") {
      opts->epoch_kib = std::strtoull(next("--epoch-kib"), nullptr, 10);
    } else if (arg == "--credits") {
      opts->credits = uint32_t(std::atoi(next("--credits")));
    } else if (arg == "--slot-kib") {
      opts->slot_kib = std::strtoull(next("--slot-kib"), nullptr, 10);
    } else if (arg == "--zipf") {
      opts->zipf = std::atof(next("--zipf"));
    } else if (arg == "--compiled") {
      opts->compiled = true;
    } else if (arg == "--verify") {
      opts->verify = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<slash::workloads::Workload> MakeWorkload(const Options& o) {
  using namespace slash::workloads;
  const bool skewed = o.zipf >= 0.0;
  if (o.workload == "ysb") {
    YsbConfig cfg;
    cfg.key_range = 100'000;
    if (skewed) cfg.keys = KeyDistribution::Zipf(o.zipf);
    return std::make_unique<YsbWorkload>(cfg);
  }
  if (o.workload == "cm") {
    return std::make_unique<CmWorkload>(CmConfig{});
  }
  if (o.workload == "nb7") {
    return std::make_unique<Nb7Workload>(NexmarkConfig{});
  }
  if (o.workload == "nb8") {
    return std::make_unique<Nb8Workload>(NexmarkConfig{});
  }
  if (o.workload == "nb11") {
    return std::make_unique<Nb11Workload>(NexmarkConfig{});
  }
  if (o.workload == "ro") {
    RoConfig cfg;
    if (skewed) cfg.keys = KeyDistribution::Zipf(o.zipf);
    return std::make_unique<RoWorkload>(cfg);
  }
  return nullptr;
}

std::unique_ptr<slash::engines::Engine> MakeEngine(const Options& o) {
  using namespace slash::engines;
  if (o.engine == "slash") return std::make_unique<SlashEngine>();
  if (o.engine == "uppar") return std::make_unique<UpParEngine>();
  if (o.engine == "flink") return std::make_unique<FlinkLikeEngine>();
  if (o.engine == "lightsaber") return std::make_unique<LightSaberEngine>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseOptions(argc, argv, &opts)) Usage(argv[0]);

  auto workload = MakeWorkload(opts);
  auto engine = MakeEngine(opts);
  if (workload == nullptr || engine == nullptr) Usage(argv[0]);
  if (opts.engine == "lightsaber") opts.nodes = 1;

  slash::engines::ClusterConfig cfg;
  cfg.nodes = opts.nodes;
  cfg.workers_per_node = opts.workers;
  cfg.records_per_worker = opts.records;
  cfg.epoch_bytes = opts.epoch_kib * slash::kKiB;
  cfg.channel.credits = opts.credits;
  cfg.channel.slot_bytes = opts.slot_kib * slash::kKiB;
  cfg.execution = opts.compiled ? slash::core::ExecutionStrategy::kCompiled
                                : slash::core::ExecutionStrategy::kInterpreted;

  const slash::core::QuerySpec query = workload->MakeQuery();
  const slash::engines::RunStats stats =
      engine->Run(query, *workload, cfg);
  slash::bench::RequireCompleted(stats, std::string(engine->name()));

  std::printf("engine            : %s\n", std::string(engine->name()).c_str());
  std::printf("workload          : %s (%s)\n",
              std::string(workload->name()).c_str(), query.name.c_str());
  std::printf("cluster           : %d nodes x %d workers\n", cfg.nodes,
              cfg.workers_per_node);
  std::printf("records processed : %llu\n",
              static_cast<unsigned long long>(stats.records_in()));
  std::printf("virtual makespan  : %s\n",
              slash::FormatNanos(stats.makespan()).c_str());
  std::printf("throughput        : %.2f M records/s\n",
              stats.throughput_rps() / 1e6);
  std::printf("network volume    : %s (%.2f GB/s)\n",
              slash::FormatBytes(stats.network_bytes()).c_str(),
              stats.network_gbytes_per_sec());
  std::printf("result rows       : %llu (checksum %016llx)\n",
              static_cast<unsigned long long>(stats.records_emitted()),
              static_cast<unsigned long long>(stats.result_checksum()));
  for (const auto& [role, counters] : stats.role_counters()) {
    std::printf("%-18s: %s\n", role.c_str(), counters.Summary().c_str());
  }

  if (opts.verify) {
    const slash::core::OracleOutput oracle = slash::core::ComputeOracle(
        query, workload->Sources(cfg.records_per_worker, cfg.seed),
        cfg.nodes * cfg.workers_per_node);
    const bool ok = oracle.checksum == stats.result_checksum() &&
                    oracle.count == stats.records_emitted();
    std::printf("oracle            : %s\n", ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }
  return 0;
}
