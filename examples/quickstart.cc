// Quickstart: define a custom streaming query, run it on a simulated
// 4-node Slash cluster, and check the results against the sequential
// reference.
//
//   $ ./build/examples/quickstart
//
// The query: sensor readings (key = sensor id, value = measurement) are
// filtered to positive readings, and a 1-second tumbling window computes
// the per-sensor maximum. Sources are plain RecordSource implementations —
// bring your own data by implementing that one interface.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util/harness.h"
#include "common/random.h"
#include "core/oracle.h"
#include "core/query.h"
#include "engines/slash_engine.h"
#include "workloads/workload.h"

namespace {

using slash::core::Record;

/// A custom data flow: deterministic synthetic sensor readings.
class SensorSource : public slash::core::RecordSource {
 public:
  SensorSource(uint64_t seed, uint64_t records)
      : rng_(seed), records_(records) {}

  bool Next(Record* out) override {
    if (produced_ >= records_) return false;
    out->timestamp = int64_t(produced_ * 5);          // 5 ms between readings
    out->key = rng_.NextBounded(64);                  // 64 sensors
    out->value = int64_t(rng_.NextBounded(200)) - 40; // some negative noise
    out->stream_id = 0;
    ++produced_;
    return true;
  }

 private:
  slash::Rng rng_;
  uint64_t records_;
  uint64_t produced_ = 0;
};

/// Adapts the custom source to the Workload interface the engines consume.
class SensorWorkload : public slash::workloads::Workload {
 public:
  std::string_view name() const override { return "sensors"; }

  slash::core::QuerySpec MakeQuery() const override {
    slash::core::QuerySpec q;
    q.name = "max_reading_per_sensor";
    q.type = slash::core::QuerySpec::Type::kAggregate;
    q.filter = [](const Record& r) { return r.value >= 0; };
    q.window = slash::core::WindowSpec::Tumbling(1000);  // 1 s windows
    q.agg = slash::state::AggKind::kMax;
    return q;
  }

  uint16_t wire_size(uint16_t) const override { return 48; }

  std::unique_ptr<slash::core::RecordSource> MakeFlow(
      int flow, int total_flows, uint64_t records,
      uint64_t seed) const override {
    return std::make_unique<SensorSource>(
        slash::workloads::FlowSeed(seed, flow), records);
  }
};

}  // namespace

int main() {
  SensorWorkload workload;
  const slash::core::QuerySpec query = workload.MakeQuery();

  slash::engines::ClusterConfig cluster;
  cluster.nodes = 4;
  cluster.workers_per_node = 4;
  cluster.records_per_worker = 25'000;
  cluster.collect_rows = true;

  slash::engines::SlashEngine engine;
  const slash::engines::RunStats stats = engine.Run(query, workload, cluster);
  slash::bench::RequireCompleted(stats, "quickstart");

  std::printf("query            : %s\n", query.name.c_str());
  std::printf("records processed: %llu\n",
              static_cast<unsigned long long>(stats.records_in()));
  std::printf("result rows      : %llu\n",
              static_cast<unsigned long long>(stats.records_emitted()));
  std::printf("virtual makespan : %s\n",
              slash::FormatNanos(stats.makespan()).c_str());
  std::printf("throughput       : %.1f M records/s\n",
              stats.throughput_rps() / 1e6);
  std::printf("network volume   : %s\n",
              slash::FormatBytes(stats.network_bytes()).c_str());

  // Verify against the sequential reference computation (property P2).
  const slash::core::OracleOutput oracle = slash::core::ComputeOracle(
      query, workload.Sources(cluster.records_per_worker, cluster.seed),
      cluster.nodes * cluster.workers_per_node);
  const bool ok = stats.result_checksum() == oracle.checksum &&
                  stats.records_emitted() == oracle.count;
  std::printf("oracle check     : %s\n", ok ? "PASS" : "FAIL");

  std::printf("\nfirst windows (bucket, sensor, max):\n");
  auto rows = stats.rows;
  std::sort(rows.begin(), rows.end());
  for (size_t i = 0; i < rows.size() && i < 8; ++i) {
    std::printf("  (%lld, %llu, %lld)\n",
                static_cast<long long>(rows[i].bucket),
                static_cast<unsigned long long>(rows[i].key),
                static_cast<long long>(rows[i].value));
  }
  return ok ? 0 : 1;
}
