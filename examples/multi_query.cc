// Multi-query multi-tenant execution (DESIGN.md §12): three tenants —
// gold, silver, bronze — submit three different queries (YSB ad analytics,
// Cluster Monitoring, a NEXMark NB8 window join) as JobSpecs to ONE
// simulated Slash cluster via SlashEngine::RunJobs.
//
//   $ ./build/examples/multi_query
//
// What the run demonstrates:
//   * One DES + one RDMA fabric execute all three jobs concurrently;
//     fair interleaving falls out of the timestamp-ordered event queue.
//   * Per-tenant NIC-credit quotas (gold 96, silver 48, bronze 24) cap
//     each job's in-flight channel credits; denials park the producer
//     until one of the tenant's transfers completes.
//   * The cluster metrics snapshot carries a {tenant=...} label on every
//     job-scoped instrument, so MultiRunStats splits it into per-job
//     RunStats views — and each view's results are checked against the
//     tenant's own sequential oracle.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "engines/slash_engine.h"
#include "obs/metrics.h"
#include "workloads/cluster_monitoring.h"
#include "workloads/nexmark.h"
#include "workloads/ysb.h"

int main() {
  using namespace slash;

  engines::ClusterConfig cluster;
  cluster.nodes = 4;
  cluster.workers_per_node = 2;

  engines::JobConfig jcfg(cluster);
  jcfg.records_per_worker = 4000;

  workloads::YsbWorkload ysb;
  workloads::CmWorkload cm;
  workloads::Nb8Workload nb8;

  struct Tenant {
    const char* name;
    const workloads::Workload* workload;
    uint32_t quota;
  };
  const std::vector<Tenant> tenants = {
      {"gold", &ysb, 96},
      {"silver", &cm, 48},
      {"bronze", &nb8, 24},
  };

  std::vector<engines::JobSpec> jobs;
  for (const Tenant& t : tenants) {
    jobs.push_back(
        engines::MakeJobSpec(t.name, *t.workload, cluster, jcfg, t.quota));
  }

  engines::SlashEngine engine;
  const engines::MultiRunStats multi = engine.RunJobs(jobs, cluster);
  if (!multi.ok()) {
    std::fprintf(stderr, "multi-job run failed: %s\n",
                 multi.status.ToString().c_str());
    return 1;
  }

  std::printf("cluster: %llu records in, makespan %.2f ms, %llu results\n\n",
              (unsigned long long)multi.cluster.records_in(),
              double(multi.cluster.makespan()) / 1e6,
              (unsigned long long)multi.cluster.records_emitted());

  std::printf("%-8s %-10s %10s %10s %12s %12s  %s\n", "tenant", "query",
              "records", "results", "drain [ms]", "denials", "oracle");
  bool all_match = true;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const engines::RunStats& job = multi.jobs[j];
    const core::QuerySpec query = tenants[j].workload->MakeQuery();
    const core::OracleOutput oracle = core::ComputeOracle(
        query,
        tenants[j].workload->Sources(jcfg.records_per_worker, jcfg.seed),
        cluster.nodes * cluster.workers_per_node);
    const bool match = job.records_in() == oracle.records_in &&
                       job.records_emitted() == oracle.count &&
                       job.result_checksum() == oracle.checksum;
    all_match = all_match && match;
    std::printf("%-8s %-10s %10llu %10llu %12.2f %12llu  %s\n",
                tenants[j].name, std::string(query.name).c_str(),
                (unsigned long long)job.records_in(),
                (unsigned long long)job.records_emitted(),
                double(job.metrics.CounterValue(obs::metric::kJobDrainNs)) /
                    1e6,
                (unsigned long long)job.metrics.CounterValue(
                    obs::metric::kChannelQuotaDenials),
                match ? "PASS" : "FAIL");
  }

  if (!all_match) {
    std::fprintf(stderr, "\nFAIL: a tenant diverged from its oracle\n");
    return 1;
  }
  std::printf("\nPASS: every tenant matches its sequential oracle\n");
  return 0;
}
