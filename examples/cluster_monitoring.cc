// Example: the Cluster Monitoring workload with operational knobs —
// sweeping the SSB epoch length to show the throughput / result-latency /
// network-volume trade-off of the coherence protocol, and the skew
// robustness of the shared-mutable-state design.
//
//   $ ./build/examples/cluster_monitoring
#include <cstdio>

#include "bench_util/harness.h"
#include "engines/slash_engine.h"
#include "workloads/cluster_monitoring.h"

int main() {
  slash::workloads::CmWorkload workload;
  const slash::core::QuerySpec query = workload.MakeQuery();

  std::printf(
      "Cluster Monitoring (2 s tumbling AVG of per-job CPU usage)\n"
      "4 nodes x 6 workers; sweeping the SSB epoch length\n\n");
  std::printf("%-12s %12s %14s %16s\n", "epoch", "Mrec/s", "net volume",
              "p50 delta latency");

  for (const uint64_t epoch_kib : {64ULL, 512ULL, 4096ULL}) {
    slash::engines::ClusterConfig cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 6;
    cluster.records_per_worker = 25'000;
    cluster.epoch_bytes = epoch_kib * slash::kKiB;

    slash::engines::SlashEngine engine;
    const slash::engines::RunStats stats =
        engine.Run(query, workload, cluster);
    slash::bench::RequireCompleted(stats, "cluster_monitoring");
    std::printf("%8llu KiB %12.1f %14s %16s\n",
                static_cast<unsigned long long>(epoch_kib),
                stats.throughput_rps() / 1e6,
                slash::FormatBytes(stats.network_bytes()).c_str(),
                slash::FormatNanos(stats.buffer_latency().Percentile(50))
                    .c_str());
  }

  std::printf("\nSkew robustness (job-popularity Zipf exponent):\n");
  std::printf("%-8s %12s\n", "z", "Mrec/s");
  for (const double z : {0.0, 0.9, 1.5}) {
    slash::workloads::CmConfig cfg;
    cfg.keys = z == 0.0 ? slash::workloads::KeyDistribution::Uniform()
                        : slash::workloads::KeyDistribution::Zipf(z);
    slash::workloads::CmWorkload skewed(cfg);
    slash::engines::ClusterConfig cluster;
    cluster.nodes = 4;
    cluster.workers_per_node = 6;
    cluster.records_per_worker = 25'000;
    slash::engines::SlashEngine engine;
    const slash::engines::RunStats stats =
        engine.Run(skewed.MakeQuery(), skewed, cluster);
    slash::bench::RequireCompleted(stats, "cluster_monitoring/skew");
    std::printf("%-8.1f %12.1f\n", z, stats.throughput_rps() / 1e6);
  }
  return 0;
}
