// Example: the Yahoo! Streaming Benchmark on all four systems under test —
// Slash, RDMA UpPar, the Flink-like IPoIB baseline, and the LightSaber-like
// scale-up engine — on identical input, printing throughput, network
// volume, and the top-down breakdown that explains the differences.
//
//   $ ./build/examples/ysb_comparison [nodes] [workers]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util/harness.h"
#include "engines/flink_engine.h"
#include "engines/lightsaber_engine.h"
#include "engines/slash_engine.h"
#include "engines/uppar_engine.h"
#include "workloads/ysb.h"

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 8;

  slash::workloads::YsbConfig ycfg;
  ycfg.key_range = 100'000;
  slash::workloads::YsbWorkload workload(ycfg);
  const slash::core::QuerySpec query = workload.MakeQuery();

  slash::engines::ClusterConfig cluster;
  cluster.nodes = nodes;
  cluster.workers_per_node = workers;
  cluster.records_per_worker = 20'000;

  std::vector<std::unique_ptr<slash::engines::Engine>> engines;
  engines.push_back(std::make_unique<slash::engines::SlashEngine>());
  engines.push_back(std::make_unique<slash::engines::UpParEngine>());
  engines.push_back(std::make_unique<slash::engines::FlinkLikeEngine>());

  std::printf("YSB on %d nodes x %d workers, %llu records/worker\n\n", nodes,
              workers,
              static_cast<unsigned long long>(cluster.records_per_worker));
  std::printf("%-16s %12s %12s %10s %10s %10s\n", "engine", "Mrec/s",
              "net GB/s", "results", "checksum", "mem GB/s");

  uint64_t reference_checksum = 0;
  for (auto& engine : engines) {
    const slash::engines::RunStats stats =
        engine->Run(query, workload, cluster);
    slash::bench::RequireCompleted(stats, std::string(engine->name()));
    if (reference_checksum == 0) reference_checksum = stats.result_checksum();
    std::printf("%-16s %12.1f %12.2f %10llu %10s %10.1f\n",
                std::string(engine->name()).c_str(),
                stats.throughput_rps() / 1e6, stats.network_gbytes_per_sec(),
                static_cast<unsigned long long>(stats.records_emitted()),
                stats.result_checksum() == reference_checksum ? "match"
                                                            : "MISMATCH",
                stats.memory_bandwidth_gbytes_per_sec());
  }

  // LightSaber runs single-node; shown for the COST comparison.
  {
    slash::engines::LightSaberEngine lightsaber;
    slash::engines::ClusterConfig single = cluster;
    single.nodes = 1;
    const slash::engines::RunStats stats =
        lightsaber.Run(query, workload, single);
    slash::bench::RequireCompleted(stats, "LightSaber");
    std::printf("%-16s %12.1f %12s %10llu %10s %10.1f   (1 node)\n",
                std::string(lightsaber.name()).c_str(),
                stats.throughput_rps() / 1e6, "-",
                static_cast<unsigned long long>(stats.records_emitted()), "-",
                stats.memory_bandwidth_gbytes_per_sec());
  }

  std::printf(
      "\nWhy the gap (top-down breakdown of the costliest roles):\n");
  {
    slash::engines::UpParEngine uppar;
    const slash::engines::RunStats stats =
        uppar.Run(query, workload, cluster);
    const auto roles = stats.role_counters();
    const auto& receiver = roles.at("receiver");
    std::printf("  UpPar receiver : %.0f%% memory-bound, %.0f%% core-bound "
                "(cold DMA buffers + scattered co-partitioned state)\n",
                receiver.fraction(slash::perf::Category::kBackEndMemory) * 100,
                receiver.fraction(slash::perf::Category::kBackEndCore) * 100);
    const auto& sender = roles.at("sender");
    std::printf("  UpPar sender   : %.0f%% front-end bound "
                "(branchy per-record partitioning)\n",
                sender.fraction(slash::perf::Category::kFrontEnd) * 100);
  }
  return 0;
}
