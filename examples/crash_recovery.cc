// Crash recovery demo: a YSB run on a 3-node Slash cluster loses a node
// mid-run and still finishes with results identical to the fault-free
// oracle — the headline robustness property of epoch-aligned
// checkpointing.
//
//   $ ./build/examples/crash_recovery
//
// The program first runs the cluster fault-free to learn the makespan,
// then re-runs the identical workload with a kNodeCrash injected at 50%
// of that makespan. Survivors restore the dead node's partition from the
// latest replicated checkpoint, replay the lost input from the sources,
// and finish the run; the recovery metrics below come out of RunStats.
#include <cstdio>

#include "bench_util/harness.h"
#include "core/oracle.h"
#include "engines/slash_engine.h"
#include "sim/fault.h"
#include "workloads/ysb.h"

int main() {
  using namespace slash;  // NOLINT: example brevity

  workloads::YsbConfig ycfg;
  ycfg.key_range = 20'000;
  workloads::YsbWorkload workload(ycfg);
  const core::QuerySpec query = workload.MakeQuery();

  engines::ClusterConfig cluster;
  cluster.nodes = 3;
  cluster.workers_per_node = 2;
  cluster.records_per_worker = 20'000;
  cluster.channel.slot_bytes = 16 * kKiB;
  cluster.epoch_bytes = 64 * kKiB;
  cluster.collect_rows = true;
  cluster.checkpoint.enabled = true;
  cluster.checkpoint.replication_factor = 2;

  engines::SlashEngine engine;

  // Pass 1: fault-free, to learn when to strike.
  const engines::RunStats clean = engine.Run(query, workload, cluster);
  bench::RequireCompleted(clean, "crash_recovery/clean");

  // Pass 2: kill node 1 halfway through the run.
  sim::FaultPlan plan;
  plan.node_crashes.push_back(
      {.at = Nanos(double(clean.makespan()) * 0.5), .node = 1});
  cluster.fault_plan = &plan;
  const engines::RunStats stats = engine.Run(query, workload, cluster);
  bench::RequireCompleted(stats, "crash_recovery/crashed");

  std::printf("workload              : YSB, %d nodes x %d workers\n",
              cluster.nodes, cluster.workers_per_node);
  std::printf("crash injected        : node 1 at %s\n",
              FormatNanos(plan.node_crashes[0].at).c_str());
  std::printf("makespan (clean)      : %s\n",
              FormatNanos(clean.makespan()).c_str());
  std::printf("makespan (crashed)    : %s\n",
              FormatNanos(stats.makespan()).c_str());
  std::printf("checkpoints taken     : %llu\n",
              static_cast<unsigned long long>(stats.checkpoints_taken()));
  std::printf("bytes replicated      : %s\n",
              FormatBytes(stats.checkpoint_bytes_replicated()).c_str());
  std::printf("recoveries            : %llu\n",
              static_cast<unsigned long long>(stats.recoveries()));
  std::printf("recovery time         : %s\n",
              FormatNanos(stats.recovery_ns()).c_str());
  std::printf("records replayed      : %llu\n",
              static_cast<unsigned long long>(stats.records_replayed()));

  // The point of the exercise: the crashed run's windowed results are
  // bit-identical to the sequential reference computation.
  const core::OracleOutput oracle = core::ComputeOracle(
      query, workload.Sources(cluster.records_per_worker, cluster.seed),
      cluster.nodes * cluster.workers_per_node);
  const bool ok = stats.records_emitted() == oracle.count &&
                  stats.result_checksum() == oracle.checksum;
  std::printf("oracle check          : %s (%llu rows, checksum %016llx)\n",
              ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(stats.records_emitted()),
              static_cast<unsigned long long>(stats.result_checksum()));
  return ok ? 0 : 1;
}
