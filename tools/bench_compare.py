#!/usr/bin/env python3
"""Compare a BENCH_*.json artifact against a committed baseline.

The bench binaries emit SLASH_BENCH_JSON artifacts of the form

    {"name": "weakscale", "points": [
        {"series": "full_mesh", "x": "n=16", "metric": "qp endpoints",
         "value": 480.0}, ...]}

keyed by (series, x, metric). This tool diffs two such files:

  * Deterministic metrics (everything by default) must match EXACTLY —
    they are virtual-time or counting quantities (makespans, QP counts,
    checksums, modeled memory) that the simulator reproduces bit-for-bit,
    so any difference is a real behavior change and fails the check.
  * Wall-clock metrics (any metric whose name contains "wall", e.g.
    "sim events/s (wall)") are host-speed measurements: they are checked
    for presence and positivity, and only compared numerically when
    --wall-rel-tol is given (useful on a machine comparable to the one
    that produced the baseline; CI leaves it off).
  * Tolerance-banded metrics: --rel-tol SUBSTR=FRAC (repeatable) relaxes
    exact matching to a relative tolerance for any deterministic metric
    whose name contains SUBSTR. Used for gate metrics that assert a
    *bound* rather than a bit pattern — e.g. the failure detector's
    "makespan overhead vs off [%]" must stay ~free, but its exact ratio
    may legitimately drift when the cost model is retuned.

Exit status: 0 when the current artifact matches the baseline, 1 on any
difference, 2 on usage/IO errors. The diff is printed one finding per
line so CI logs read directly.

Usage:
    tools/bench_compare.py BASELINE CURRENT [--wall-rel-tol FRAC]
        [--rel-tol SUBSTR=FRAC ...] [--subset] [--allow-new-fields]

    --subset   Allow CURRENT to cover only part of the baseline's keys
               (CI smoke runs a --benchmark_filter slice); missing keys
               are not failures, but keys absent from the BASELINE still
               are. Without it, key sets must match exactly.

    --allow-new-fields
               Accept datapoints present in CURRENT but absent from the
               BASELINE. Without it, every added (series, x, metric) is
               listed and fails the check — the escape hatch exists for
               the one CI run that lands a PR adding new bench series,
               after which the regenerated baseline must be committed.
"""

import argparse
import json
import sys


def load_points(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    points = {}
    for p in doc.get("points", []):
        key = (p["series"], p["x"], p["metric"])
        if key in points:
            print(f"error: duplicate key {key} in {path}", file=sys.stderr)
            sys.exit(2)
        points[key] = float(p["value"])
    if not points:
        print(f"error: no points in {path}", file=sys.stderr)
        sys.exit(2)
    return doc.get("name", "?"), points


def is_wall_metric(metric):
    return "wall" in metric


def parse_rel_tols(specs):
    """Parses repeated SUBSTR=FRAC options into [(substr, frac)] pairs."""
    tols = []
    for spec in specs or []:
        substr, sep, frac = spec.rpartition("=")
        try:
            frac_val = float(frac)
        except ValueError:
            frac_val = -1.0
        if not sep or not substr or frac_val < 0:
            print(f"error: bad --rel-tol {spec!r} (want SUBSTR=FRAC with "
                  f"FRAC >= 0)", file=sys.stderr)
            sys.exit(2)
        tols.append((substr, frac_val))
    return tols


def rel_tol_for(metric, tols):
    """First matching tolerance band for `metric`, or None for exact."""
    for substr, frac in tols:
        if substr in metric:
            return frac
    return None


def fmt(key):
    series, x, metric = key
    return f"{series} / {x} / {metric}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_*.json baseline")
    ap.add_argument("current", help="freshly produced BENCH_*.json")
    ap.add_argument(
        "--wall-rel-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="also compare wall-clock metrics, within this relative "
        "tolerance (e.g. 0.5); default: presence + positivity only",
    )
    ap.add_argument(
        "--rel-tol",
        action="append",
        default=None,
        metavar="SUBSTR=FRAC",
        help="compare deterministic metrics whose name contains SUBSTR "
        "within this relative tolerance instead of exactly; repeatable "
        "(first matching SUBSTR wins)",
    )
    ap.add_argument(
        "--subset",
        action="store_true",
        help="allow the current file to cover a subset of the baseline "
        "(filtered CI smoke runs)",
    )
    ap.add_argument(
        "--allow-new-fields",
        action="store_true",
        help="accept datapoints present in the current artifact but absent "
        "from the baseline (for the one run landing a PR that adds bench "
        "series/metrics; commit the regenerated baseline right after)",
    )
    args = ap.parse_args()

    rel_tols = parse_rel_tols(args.rel_tol)
    base_name, base = load_points(args.baseline)
    cur_name, cur = load_points(args.current)

    failures = []
    if base_name != cur_name:
        failures.append(f"table name differs: {base_name!r} vs {cur_name!r}")

    added = sorted(set(cur) - set(base))
    if added and not args.allow_new_fields:
        failures.append(
            f"{len(added)} field(s) in the current artifact are absent from "
            f"the baseline — if this PR intentionally adds bench "
            f"series/metrics, re-run with --allow-new-fields and commit the "
            f"regenerated baseline:"
        )
        failures.extend(f"  added field: {fmt(key)}" for key in added)
    if not args.subset:
        for key in sorted(set(base) - set(cur)):
            failures.append(f"missing datapoint: {fmt(key)}")

    compared = 0
    for key in sorted(set(base) & set(cur)):
        want, got = base[key], cur[key]
        if is_wall_metric(key[2]):
            if not got > 0:
                failures.append(f"wall metric not positive: {fmt(key)} = {got}")
            elif args.wall_rel_tol is not None:
                rel = abs(got - want) / max(abs(want), 1e-300)
                if rel > args.wall_rel_tol:
                    failures.append(
                        f"wall metric off by {rel:.1%} (> "
                        f"{args.wall_rel_tol:.1%}): {fmt(key)}: "
                        f"baseline {want}, current {got}"
                    )
            compared += 1
        else:
            tol = rel_tol_for(key[2], rel_tols)
            if tol is not None:
                rel = abs(got - want) / max(abs(want), 1e-300)
                if rel > tol:
                    failures.append(
                        f"banded metric off by {rel:.1%} (> {tol:.1%}): "
                        f"{fmt(key)}: baseline {want}, current {got}"
                    )
            elif got != want:
                failures.append(
                    f"deterministic metric changed: {fmt(key)}: "
                    f"baseline {want!r}, current {got!r}"
                )
            compared += 1

    if failures:
        print(f"bench_compare: {args.current} vs {args.baseline}: "
              f"{len(failures)} difference(s)")
        for f in failures:
            print(f"  FAIL {f}")
        sys.exit(1)
    print(f"bench_compare: OK — {compared} datapoint(s) match "
          f"{args.baseline}" + (" (subset)" if args.subset else ""))


if __name__ == "__main__":
    main()
